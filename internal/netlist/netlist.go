// Package netlist builds and evaluates explicit gate-level circuits for
// the Qat datapath structures, closing the loop between the three views
// this repository has of the same hardware:
//
//   - behavioral: package aob's word-parallel implementations,
//   - analytic:   package gates' gate-count/levels cost model,
//   - structural: this package — the actual network of AND/OR/NOT/MUX
//     gates that the paper's Figures 7 and 8 Verilog describes, evaluated
//     gate by gate.
//
// The tests prove that the structural circuits compute exactly the
// architectural functions (the role of the students' Verilog testbenches)
// and that their measured gate counts and logic depth match the analytic
// model's predictions.
package netlist

import "fmt"

// Kind enumerates gate types.
type Kind uint8

const (
	KindConst Kind = iota
	KindInput
	KindNot
	KindAnd
	KindOr
	KindMux // Mux(sel, a, b) = sel ? b : a
)

// gate is one node of the network. Inputs reference earlier gates only
// (the builder enforces topological construction), so evaluation is a
// single forward pass.
type gate struct {
	kind Kind
	a    int32 // operand indices; meaning depends on kind
	b    int32
	sel  int32
	val  bool // constant value / evaluation scratch
	// depth is the longest path from any input, in levels of logic.
	depth int32
}

// Circuit is a combinational network under construction or evaluation.
type Circuit struct {
	gates  []gate
	inputs []int32
	// counts per kind, excluding consts and inputs
	nGates  int
	maxPath int32
}

// New returns an empty circuit.
func New() *Circuit { return &Circuit{} }

// Const adds a constant node and returns its id.
func (c *Circuit) Const(v bool) int32 {
	c.gates = append(c.gates, gate{kind: KindConst, val: v})
	return int32(len(c.gates) - 1)
}

// Input adds a primary input and returns its id.
func (c *Circuit) Input() int32 {
	c.gates = append(c.gates, gate{kind: KindInput})
	id := int32(len(c.gates) - 1)
	c.inputs = append(c.inputs, id)
	return id
}

func (c *Circuit) depthOf(id int32) int32 { return c.gates[id].depth }

func (c *Circuit) addGate(g gate, depth int32) int32 {
	g.depth = depth
	c.gates = append(c.gates, g)
	c.nGates++
	if depth > c.maxPath {
		c.maxPath = depth
	}
	return int32(len(c.gates) - 1)
}

func max32(a, b int32) int32 {
	if a > b {
		return a
	}
	return b
}

// Not adds an inverter.
func (c *Circuit) Not(a int32) int32 {
	return c.addGate(gate{kind: KindNot, a: a}, c.depthOf(a)+1)
}

// And adds a 2-input AND.
func (c *Circuit) And(a, b int32) int32 {
	return c.addGate(gate{kind: KindAnd, a: a, b: b}, max32(c.depthOf(a), c.depthOf(b))+1)
}

// Or adds a 2-input OR.
func (c *Circuit) Or(a, b int32) int32 {
	return c.addGate(gate{kind: KindOr, a: a, b: b}, max32(c.depthOf(a), c.depthOf(b))+1)
}

// Mux adds a 2:1 multiplexer: sel ? b : a. It counts as one gate and one
// level, matching the convention of the analytic model.
func (c *Circuit) Mux(sel, a, b int32) int32 {
	d := max32(c.depthOf(sel), max32(c.depthOf(a), c.depthOf(b))) + 1
	return c.addGate(gate{kind: KindMux, a: a, b: b, sel: sel}, d)
}

// OrReduce adds a balanced 2-input OR tree over ids and returns its root
// (the identity-false constant for an empty list).
func (c *Circuit) OrReduce(ids []int32) int32 {
	switch len(ids) {
	case 0:
		return c.Const(false)
	case 1:
		return ids[0]
	}
	mid := len(ids) / 2
	return c.Or(c.OrReduce(ids[:mid]), c.OrReduce(ids[mid:]))
}

// NumGates reports the logic gate count (consts and inputs excluded).
func (c *Circuit) NumGates() int { return c.nGates }

// Depth reports the worst-case levels of logic.
func (c *Circuit) Depth() int { return int(c.maxPath) }

// NumInputs reports the primary input count.
func (c *Circuit) NumInputs() int { return len(c.inputs) }

// Eval computes the value of every gate for the given input assignment and
// returns a function reading any node's value.
func (c *Circuit) Eval(inputs []bool) (func(id int32) bool, error) {
	if len(inputs) != len(c.inputs) {
		return nil, fmt.Errorf("netlist: got %d inputs, want %d", len(inputs), len(c.inputs))
	}
	vals := make([]bool, len(c.gates))
	ii := 0
	for i := range c.gates {
		g := &c.gates[i]
		switch g.kind {
		case KindConst:
			vals[i] = g.val
		case KindInput:
			vals[i] = inputs[ii]
			ii++
		case KindNot:
			vals[i] = !vals[g.a]
		case KindAnd:
			vals[i] = vals[g.a] && vals[g.b]
		case KindOr:
			vals[i] = vals[g.a] || vals[g.b]
		case KindMux:
			if vals[g.sel] {
				vals[i] = vals[g.b]
			} else {
				vals[i] = vals[g.a]
			}
		}
	}
	return func(id int32) bool { return vals[id] }, nil
}
