package netlist

import (
	"fmt"
	"math/bits"
)

// This file constructs the two nontrivial Qat datapath circuits as explicit
// netlists, following the structure of the paper's Verilog:
//
//   - HadCircuit is Figure 7's had: each output channel selects bit h of
//     its own index through a constant multiplexer tree ("a lookup table
//     expressed as a Verilog combinatorial always ... using a case
//     statement (multiplexor)").
//   - NextCircuit is Figure 8's next: a barrel-shifter masking step
//     followed by the recursive halve-and-test count-trailing-zeros
//     decomposition.

// HadNetlist is the built Figure 7 circuit.
type HadNetlist struct {
	C *Circuit
	// Sel are the pattern-select inputs, least significant first
	// (ceil(log2 ways) lines).
	Sel []int32
	// Out are the 2^ways channel outputs.
	Out []int32
}

// HadCircuit builds the constant-mux had generator for the given
// entanglement degree.
func HadCircuit(ways int) (*HadNetlist, error) {
	if ways < 1 || ways > 16 {
		return nil, fmt.Errorf("netlist: ways %d out of range", ways)
	}
	c := New()
	selBits := bits.Len(uint(ways - 1))
	if ways == 1 {
		selBits = 0
	}
	sel := make([]int32, selBits)
	for i := range sel {
		sel[i] = c.Input()
	}
	channels := 1 << uint(ways)
	out := make([]int32, channels)
	for ch := 0; ch < channels; ch++ {
		// The constant column for this channel: bit k of ch, k = 0..ways-1.
		col := make([]int32, ways)
		for k := 0; k < ways; k++ {
			col[k] = c.Const(ch>>uint(k)&1 == 1)
		}
		out[ch] = muxTree(c, sel, col)
	}
	return &HadNetlist{C: c, Sel: sel, Out: out}, nil
}

// muxTree selects vals[sel] with a binary multiplexer tree. Out-of-range
// selections (when len(vals) is not a power of two) resolve to the highest
// populated entry, which never occurs for valid had indices.
func muxTree(c *Circuit, sel []int32, vals []int32) int32 {
	if len(vals) == 1 || len(sel) == 0 {
		return vals[0]
	}
	half := 1 << uint(len(sel)-1)
	if len(vals) <= half {
		return muxTree(c, sel[:len(sel)-1], vals)
	}
	lo := muxTree(c, sel[:len(sel)-1], vals[:half])
	hi := muxTree(c, sel[:len(sel)-1], vals[half:])
	return c.Mux(sel[len(sel)-1], lo, hi)
}

// NextNetlist is the built Figure 8 circuit.
type NextNetlist struct {
	C *Circuit
	// AoB are the 2^ways value inputs, channel 0 first.
	AoB []int32
	// S are the start-channel inputs, least significant first (ways lines).
	S []int32
	// R are the result outputs, least significant first (ways lines).
	R []int32
}

// NextCircuit builds the Figure 8 next datapath: mask channels <= s with a
// right-then-left barrel shifter, then locate the lowest surviving 1 with
// the recursive decomposition.
func NextCircuit(ways int) (*NextNetlist, error) {
	if ways < 1 || ways > 16 {
		return nil, fmt.Errorf("netlist: ways %d out of range", ways)
	}
	c := New()
	n := 1 << uint(ways)
	aob := make([]int32, n)
	for i := range aob {
		aob[i] = c.Input()
	}
	s := make([]int32, ways)
	for i := range s {
		s[i] = c.Input()
	}
	zero := c.Const(false)

	// Step 1, per the Verilog {((aob[(1<<WAYS)-1:1] >> s) << s), 1'b0}:
	// the shifters operate on the (n-1)-bit vector w[j] = aob[j+1]; the
	// final 1'b0 concatenation re-aligns the indices, so channels 0..s all
	// come out zero (the off-by-one is load-bearing: channel s itself is
	// masked by the dropped bit plus the s-deep shift).
	w := make([]int32, n-1)
	for j := range w {
		w[j] = aob[j+1]
	}
	// Right shift by s (zeros in from the top), one mux stage per s bit.
	for k := 0; k < ways; k++ {
		sh := 1 << uint(k)
		nw := make([]int32, len(w))
		for i := range w {
			from := zero
			if i+sh < len(w) {
				from = w[i+sh]
			}
			nw[i] = c.Mux(s[k], w[i], from)
		}
		w = nw
	}
	// Left shift by s (zeros in from the bottom).
	for k := 0; k < ways; k++ {
		sh := 1 << uint(k)
		nw := make([]int32, len(w))
		for i := range w {
			from := zero
			if i-sh >= 0 {
				from = w[i-sh]
			}
			nw[i] = c.Mux(s[k], w[i], from)
		}
		w = nw
	}
	v := make([]int32, 0, n)
	v = append(v, zero) // the 1'b0
	v = append(v, w...)

	// Step 2: recursive halve-and-test. tr[pow2] = lower half empty; keep
	// the half that holds the answer.
	tr := make([]int32, ways)
	window := v
	for pow2 := ways - 1; pow2 >= 0; pow2-- {
		half := 1 << uint(pow2)
		low := window[:half]
		high := window[half:]
		orLow := c.OrReduce(append([]int32(nil), low...))
		tr[pow2] = c.Not(orLow)
		next := make([]int32, half)
		for j := 0; j < half; j++ {
			// orLow ? low[j] : high[j]
			next[j] = c.Mux(orLow, high[j], low[j])
		}
		window = next
	}
	// window[0] is the single surviving candidate bit; if it is 0 the
	// masked vector was empty and the result is 0.
	valid := window[0]
	r := make([]int32, ways)
	for k := 0; k < ways; k++ {
		r[k] = c.And(tr[k], valid)
	}
	return &NextNetlist{C: c, AoB: aob, S: s, R: r}, nil
}

// EvalNext runs the circuit for a concrete AoB bit slice and start channel
// and returns the located channel number.
func (nl *NextNetlist) EvalNext(aobBits []bool, s uint64) (uint64, error) {
	inputs := make([]bool, 0, len(nl.AoB)+len(nl.S))
	inputs = append(inputs, aobBits...)
	for k := 0; k < len(nl.S); k++ {
		inputs = append(inputs, s>>uint(k)&1 == 1)
	}
	read, err := nl.C.Eval(inputs)
	if err != nil {
		return 0, err
	}
	var r uint64
	for k, id := range nl.R {
		if read(id) {
			r |= uint64(1) << uint(k)
		}
	}
	return r, nil
}

// EvalHad runs the had circuit for pattern index k and returns the output
// channels as a bit slice.
func (nl *HadNetlist) EvalHad(k int) ([]bool, error) {
	inputs := make([]bool, len(nl.Sel))
	for i := range inputs {
		inputs[i] = k>>uint(i)&1 == 1
	}
	read, err := nl.C.Eval(inputs)
	if err != nil {
		return nil, err
	}
	out := make([]bool, len(nl.Out))
	for i, id := range nl.Out {
		out[i] = read(id)
	}
	return out, nil
}
