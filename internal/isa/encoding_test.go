package isa

import (
	"testing"
	"testing/quick"
)

// TestStudentEncodingRoundTrip: every op round-trips through the
// alternative codec with all fields preserved — the ISA fits more than one
// encoding, as the paper's course design intends.
func TestStudentEncodingRoundTrip(t *testing.T) {
	for _, op := range allOps() {
		in := sampleInst(op)
		words, err := Student.Encode(in)
		if err != nil {
			t.Fatalf("%s: %v", op.Name(), err)
		}
		if len(words) != in.Words() {
			t.Fatalf("%s: %d words", op.Name(), len(words))
		}
		var w1 uint16
		if len(words) > 1 {
			w1 = words[1]
		}
		out, n, err := Student.Decode(words[0], w1)
		if err != nil || n != len(words) || out != in {
			t.Fatalf("%s: round trip %+v -> %+v (%v)", op.Name(), in, out, err)
		}
	}
}

// TestEncodingsDiffer: the two codecs genuinely disagree on bit patterns
// (otherwise the demonstration is vacuous).
func TestEncodingsDiffer(t *testing.T) {
	diff := 0
	for _, op := range allOps() {
		in := sampleInst(op)
		a, _ := Primary.Encode(in)
		b, _ := Student.Encode(in)
		if a[0] != b[0] {
			diff++
		}
	}
	if diff < int(numOps)-2 {
		t.Errorf("only %d ops encode differently", diff)
	}
}

// TestStudentZeroWordTraps: all-zero memory decodes as an illegal
// instruction under the student layout.
func TestStudentZeroWordTraps(t *testing.T) {
	if _, _, err := Student.Decode(0, 0); err == nil {
		t.Error("zero word decoded")
	}
}

// TestCrossTranscode: Primary -> Student -> Primary is the identity on
// instruction streams.
func TestCrossTranscode(t *testing.T) {
	var words []uint16
	for _, op := range allOps() {
		w, err := Primary.Encode(sampleInst(op))
		if err != nil {
			t.Fatal(err)
		}
		words = append(words, w...)
	}
	student, err := Transcode(words, Primary, Student)
	if err != nil {
		t.Fatal(err)
	}
	back, err := Transcode(student, Student, Primary)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != len(words) {
		t.Fatalf("length %d != %d", len(back), len(words))
	}
	for i := range words {
		if back[i] != words[i] {
			t.Fatalf("word %d: %04x != %04x", i, back[i], words[i])
		}
	}
}

// TestStudentDecodeTotalProperty: the student decoder never panics and
// agrees with its encoder, for arbitrary words.
func TestStudentDecodeTotalProperty(t *testing.T) {
	f := func(w0, w1 uint16) bool {
		inst, n, err := Student.Decode(w0, w1)
		if err != nil {
			return n == 1
		}
		words, err := Student.Encode(inst)
		if err != nil || len(words) != n {
			return false
		}
		if words[0] != w0 {
			return false
		}
		return n == 1 || words[1] == w1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20000}); err != nil {
		t.Error(err)
	}
}

func TestPrimaryEncodingWrapper(t *testing.T) {
	if Primary.Name() != "primary" || Student.Name() != "student" {
		t.Error("names")
	}
	in := Inst{Op: OpAdd, RD: 1, RS: 2}
	a, _ := Primary.Encode(in)
	b, _ := Encode(in)
	if a[0] != b[0] {
		t.Error("Primary wrapper diverges from package functions")
	}
}
