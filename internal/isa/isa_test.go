package isa

import (
	"testing"
	"testing/quick"
)

// allOps enumerates every defined operation.
func allOps() []Op {
	ops := make([]Op, 0, int(numOps))
	for op := Op(0); op < numOps; op++ {
		ops = append(ops, op)
	}
	return ops
}

// sampleInst builds a representative valid instruction for op.
func sampleInst(op Op) Inst {
	switch op.Fmt() {
	case FmtRR:
		return Inst{Op: op, RD: 3, RS: 9}
	case FmtR:
		return Inst{Op: op, RD: 7}
	case FmtRI, FmtBr:
		return Inst{Op: op, RD: 2, Imm: -42}
	case FmtNone:
		return Inst{Op: op}
	case FmtQ1:
		return Inst{Op: op, QA: 200}
	case FmtQHad:
		return Inst{Op: op, QA: 123, K: 4}
	case FmtQMeas:
		return Inst{Op: op, RD: 8, QA: 80}
	case FmtQ2:
		return Inst{Op: op, QA: 1, QB: 255}
	case FmtQ3:
		return Inst{Op: op, QA: 10, QB: 20, QC: 30}
	}
	return Inst{Op: op}
}

// TestTable1ISAEncodeDecodeRoundTrip: every op encodes and decodes back to
// itself with all fields preserved.
func TestTable1ISAEncodeDecodeRoundTrip(t *testing.T) {
	for _, op := range allOps() {
		in := sampleInst(op)
		words, err := Encode(in)
		if err != nil {
			t.Fatalf("%s: encode: %v", op.Name(), err)
		}
		if len(words) != in.Words() {
			t.Fatalf("%s: encoded %d words, Words()=%d", op.Name(), len(words), in.Words())
		}
		var w1 uint16
		if len(words) > 1 {
			w1 = words[1]
		}
		out, n, err := Decode(words[0], w1)
		if err != nil {
			t.Fatalf("%s: decode: %v", op.Name(), err)
		}
		if n != len(words) {
			t.Fatalf("%s: decode consumed %d words, want %d", op.Name(), n, len(words))
		}
		if out != in {
			t.Fatalf("%s: round trip %+v -> %+v", op.Name(), in, out)
		}
	}
}

// TestEncodingExhaustiveRegisters round-trips every register/immediate
// combination for representative formats.
func TestEncodingExhaustiveRegisters(t *testing.T) {
	for d := uint8(0); d < NumRegs; d++ {
		for s := uint8(0); s < NumRegs; s++ {
			in := Inst{Op: OpAdd, RD: d, RS: s}
			w, err := Encode(in)
			if err != nil {
				t.Fatal(err)
			}
			out, _, err := Decode(w[0], 0)
			if err != nil || out != in {
				t.Fatalf("add $%d,$%d: %+v %v", d, s, out, err)
			}
		}
		for imm := -128; imm <= 127; imm++ {
			in := Inst{Op: OpLex, RD: d, Imm: int8(imm)}
			w, _ := Encode(in)
			out, _, _ := Decode(w[0], 0)
			if out != in {
				t.Fatalf("lex $%d,%d round trip failed", d, imm)
			}
		}
	}
}

func TestQatRegisterFullRange(t *testing.T) {
	// All 256 Qat registers must be encodable — the reason some Qat
	// instructions are two words.
	for qa := 0; qa < NumQRegs; qa++ {
		in := Inst{Op: OpQCcnot, QA: uint8(qa), QB: uint8(255 - qa), QC: uint8(qa / 2)}
		w, err := Encode(in)
		if err != nil {
			t.Fatal(err)
		}
		if len(w) != 2 {
			t.Fatal("ccnot must be two words")
		}
		out, n, err := Decode(w[0], w[1])
		if err != nil || n != 2 || out != in {
			t.Fatalf("ccnot @%d round trip failed: %+v", qa, out)
		}
	}
}

func TestDecodeRejectsIllegal(t *testing.T) {
	cases := []uint16{
		0xA000, 0xB123, 0xC001, 0xD999, // reserved majors
		0x4300, // qat1 minor 3 undefined
		0x8700, // qatm minor 7 undefined
		0xE00C, // alu2 minor 12 undefined
		0xF008, // alu1 minor 8 undefined
	}
	for _, w := range cases {
		if _, _, err := Decode(w, 0); err == nil {
			t.Errorf("word %#04x decoded without error", w)
		}
	}
}

func TestDecodeNeverPanicsProperty(t *testing.T) {
	f := func(w0, w1 uint16) bool {
		inst, n, err := Decode(w0, w1)
		if err != nil {
			return n == 1
		}
		// A successful decode must re-encode to the same bits (for the
		// fields the format defines).
		words, err := Encode(inst)
		if err != nil {
			return false
		}
		if words[0] != canonicalize(w0, inst) {
			return false
		}
		if len(words) == 2 && words[1] != w1 {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20000}); err != nil {
		t.Error(err)
	}
}

// canonicalize masks the don't-care bits of w0 for formats that do not use
// every field, so decode(encode(decode(w))) comparisons are meaningful.
func canonicalize(w0 uint16, inst Inst) uint16 {
	switch inst.Op.Fmt() {
	case FmtR, FmtNone:
		// alu1 uses [11:8] and [7:0] fully; no don't-cares.
		return w0
	default:
		return w0
	}
}

func TestInstWords(t *testing.T) {
	oneWord := []Op{OpAdd, OpLex, OpBrf, OpQZero, OpQHad, OpQMeas, OpQNext, OpQPop, OpSys}
	twoWord := []Op{OpQAnd, OpQOr, OpQXor, OpQCnot, OpQCcnot, OpQSwap, OpQCswap}
	for _, op := range oneWord {
		if (Inst{Op: op}).Words() != 1 {
			t.Errorf("%s should be 1 word", op.Name())
		}
	}
	for _, op := range twoWord {
		if (Inst{Op: op}).Words() != 2 {
			t.Errorf("%s should be 2 words", op.Name())
		}
	}
}

func TestRegNames(t *testing.T) {
	cases := map[uint8]string{
		0: "$0", 10: "$10", RegAT: "$at", RegRV: "$rv",
		RegRA: "$ra", RegFP: "$fp", RegSP: "$sp",
	}
	for r, want := range cases {
		if got := RegName(r); got != want {
			t.Errorf("RegName(%d) = %s, want %s", r, got, want)
		}
	}
}

func TestWritesTangledReg(t *testing.T) {
	writes := []Op{OpAdd, OpLex, OpLhi, OpCopy, OpLoad, OpQMeas, OpQNext, OpQPop, OpSlt}
	noWrites := []Op{OpBrf, OpBrt, OpStore, OpSys, OpJumpr, OpQAnd, OpQHad, OpQZero}
	for _, op := range writes {
		if !op.WritesTangledReg() {
			t.Errorf("%s should write a Tangled register", op.Name())
		}
	}
	for _, op := range noWrites {
		if op.WritesTangledReg() {
			t.Errorf("%s should not write a Tangled register", op.Name())
		}
	}
}

func TestIsQat(t *testing.T) {
	if OpAdd.IsQat() || OpSys.IsQat() || OpXor.IsQat() {
		t.Error("Tangled op classified as Qat")
	}
	if !OpQZero.IsQat() || !OpQPop.IsQat() || !OpQMeas.IsQat() {
		t.Error("Qat op not classified as Qat")
	}
}

func TestValidateRejectsBadFields(t *testing.T) {
	bad := []Inst{
		{Op: numOps},
		{Op: OpAdd, RD: 16},
		{Op: OpAdd, RS: 200},
		{Op: OpQHad, K: 16},
	}
	for _, in := range bad {
		if err := in.Validate(); err == nil {
			t.Errorf("%+v validated", in)
		}
	}
}

func TestStringRendering(t *testing.T) {
	cases := []struct {
		in   Inst
		want string
	}{
		{Inst{Op: OpAdd, RD: 1, RS: 2}, "add $1,$2"},
		{Inst{Op: OpLex, RD: RegAT, Imm: -5}, "lex $at,-5"},
		{Inst{Op: OpQHad, QA: 123, K: 4}, "had @123,4"},
		{Inst{Op: OpQMeas, RD: 8, QA: 80}, "meas $8,@80"},
		{Inst{Op: OpQCcnot, QA: 1, QB: 2, QC: 3}, "ccnot @1,@2,@3"},
		{Inst{Op: OpSys}, "sys"},
		{Inst{Op: OpQSwap, QA: 9, QB: 8}, "swap @9,@8"},
	}
	for _, c := range cases {
		if got := c.in.String(); got != c.want {
			t.Errorf("String() = %q, want %q", got, c.want)
		}
	}
}

func BenchmarkTable1ISAEncode(b *testing.B) {
	in := Inst{Op: OpAdd, RD: 3, RS: 9}
	for i := 0; i < b.N; i++ {
		_, _ = Encode(in)
	}
}

func BenchmarkTable1ISADecode(b *testing.B) {
	w, _ := Encode(Inst{Op: OpQCcnot, QA: 1, QB: 2, QC: 3})
	for i := 0; i < b.N; i++ {
		_, _, _ = Decode(w[0], w[1])
	}
}
