// Package isa defines the Tangled/Qat instruction set architecture from
// Tables 1-3 of the paper, together with one concrete binary encoding and
// its encoder/decoder.
//
// The paper deliberately does not fix an encoding — each student chose one
// with the AIK assembler generator; "this instruction word size only has
// space for a 4-bit fixed opcode field, but there are more than 16 different
// types of instructions; thus, students needed to be slightly clever about
// picking an encoding". The encoding here applies the standard trick: a
// 4-bit major opcode selects either a single instruction with a wide
// immediate or a group whose members are distinguished by a minor opcode in
// otherwise-unused operand bits.
//
// Instruction word layout (16-bit words, field [15:12] = major opcode):
//
//	0x0 lex   $d,imm8   [11:8]=d [7:0]=imm8 (sign-extended at execute)
//	0x1 lhi   $d,imm8   [11:8]=d [7:0]=imm8 (into high byte)
//	0x2 brf   $c,off8   [11:8]=c [7:0]=signed word offset from next PC
//	0x3 brt   $c,off8   likewise
//	0x4 qat1  sub,@a    [11:8]=minor (0 zero, 1 one, 2 not) [7:0]=@a
//	0x5 had   @a,imm4   [11:8]=imm4 [7:0]=@a
//	0x6 meas  $d,@a     [11:8]=d [7:0]=@a
//	0x7 next  $d,@a     [11:8]=d [7:0]=@a
//	0x8 qatm  sub,@a / @b,@c   TWO WORDS:
//	       word0 [11:8]=minor (0 and, 1 or, 2 xor, 3 ccnot, 4 cswap,
//	                           5 cnot, 6 swap) [7:0]=@a
//	       word1 [15:8]=@b [7:0]=@c (cnot/swap ignore @c)
//	0x9 pop   $d,@a     [11:8]=d [7:0]=@a (the proposed extension op)
//	0xE alu2  $d,$s     [11:8]=d [7:4]=s [3:0]=minor (0 add, 1 addf, 2 and,
//	                     3 copy, 4 load, 5 mul, 6 mulf, 7 or, 8 shift,
//	                     9 slt, 10 store, 11 xor)
//	0xF alu1  $d        [11:8]=d [7:0]=minor (0 float, 1 int, 2 jumpr,
//	                     3 neg, 4 negf, 5 not, 6 recip, 7 sys)
//
// Majors 0xA-0xD are reserved and decode as illegal instructions. The only
// two-word forms are the multi-register Qat operations, exactly as the
// paper observes: "the use of 8-bit Qat register numbers does force some
// Qat instructions to be two 16-bit words long".
package isa

import "fmt"

// Op identifies an instruction's operation, spanning the Tangled base set
// (Table 1) and the Qat coprocessor set (Table 3).
type Op uint8

const (
	// Tangled base instruction set (Table 1).
	OpAdd Op = iota
	OpAddf
	OpAnd
	OpBrf
	OpBrt
	OpCopy
	OpFloat
	OpInt
	OpJumpr
	OpLex
	OpLhi
	OpLoad
	OpMul
	OpMulf
	OpNeg
	OpNegf
	OpNot
	OpOr
	OpRecip
	OpShift
	OpSlt
	OpStore
	OpSys
	OpXor

	// Qat coprocessor instruction set (Table 3).
	OpQZero
	OpQOne
	OpQNot
	OpQHad
	OpQMeas
	OpQNext
	OpQAnd
	OpQOr
	OpQXor
	OpQCnot
	OpQCcnot
	OpQSwap
	OpQCswap
	OpQPop // specified but omitted from the class projects (Section 2.7)

	numOps
)

// Tangled register conventions (Section 2.1): 0-10 general purpose, then
// the assembler temporary and the call-handling quartet.
const (
	RegAT = 11 // assembler temporary, used by Table 2 macros
	RegRV = 12 // return value
	RegRA = 13 // return address
	RegFP = 14 // frame pointer
	RegSP = 15 // stack pointer
)

// NumOps is the number of defined opcodes, Tangled and Qat together —
// the index space for dense per-opcode tables (timing models, performance
// counters).
const NumOps = int(numOps)

// NumRegs is the Tangled general register file size.
const NumRegs = 16

// NumQRegs is the Qat coprocessor register file size: "the lack of external
// storage is also why a relatively large number of registers was selected
// for Qat: 256".
const NumQRegs = 256

// regNames maps register numbers to assembly spellings.
var regNames = [NumRegs]string{
	"$0", "$1", "$2", "$3", "$4", "$5", "$6", "$7", "$8", "$9", "$10",
	"$at", "$rv", "$ra", "$fp", "$sp",
}

// RegName returns the canonical assembly name of Tangled register r.
func RegName(r uint8) string {
	if int(r) < len(regNames) {
		return regNames[r]
	}
	return fmt.Sprintf("$?%d", r)
}

// Format describes an instruction's operand shape, used by the assembler,
// disassembler and encoder.
type Format uint8

const (
	FmtRR    Format = iota // op $d,$s
	FmtR                   // op $d
	FmtRI                  // op $d,imm8
	FmtBr                  // op $c,label (8-bit signed word offset)
	FmtNone                // op            (sys)
	FmtQ1                  // op @a
	FmtQHad                // op @a,imm4
	FmtQMeas               // op $d,@a     (meas, next, pop)
	FmtQ2                  // op @a,@b     (cnot, swap) — two words
	FmtQ3                  // op @a,@b,@c  (and, or, xor, ccnot, cswap) — two words
)

// Info is per-op metadata.
type Info struct {
	Name   string
	Format Format
}

var opInfo = [numOps]Info{
	OpAdd:    {"add", FmtRR},
	OpAddf:   {"addf", FmtRR},
	OpAnd:    {"and", FmtRR},
	OpBrf:    {"brf", FmtBr},
	OpBrt:    {"brt", FmtBr},
	OpCopy:   {"copy", FmtRR},
	OpFloat:  {"float", FmtR},
	OpInt:    {"int", FmtR},
	OpJumpr:  {"jumpr", FmtR},
	OpLex:    {"lex", FmtRI},
	OpLhi:    {"lhi", FmtRI},
	OpLoad:   {"load", FmtRR},
	OpMul:    {"mul", FmtRR},
	OpMulf:   {"mulf", FmtRR},
	OpNeg:    {"neg", FmtR},
	OpNegf:   {"negf", FmtR},
	OpNot:    {"not", FmtR},
	OpOr:     {"or", FmtRR},
	OpRecip:  {"recip", FmtR},
	OpShift:  {"shift", FmtRR},
	OpSlt:    {"slt", FmtRR},
	OpStore:  {"store", FmtRR},
	OpSys:    {"sys", FmtNone},
	OpXor:    {"xor", FmtRR},
	OpQZero:  {"zero", FmtQ1},
	OpQOne:   {"one", FmtQ1},
	OpQNot:   {"qnot", FmtQ1},
	OpQHad:   {"had", FmtQHad},
	OpQMeas:  {"meas", FmtQMeas},
	OpQNext:  {"next", FmtQMeas},
	OpQAnd:   {"qand", FmtQ3},
	OpQOr:    {"qor", FmtQ3},
	OpQXor:   {"qxor", FmtQ3},
	OpQCnot:  {"cnot", FmtQ2},
	OpQCcnot: {"ccnot", FmtQ3},
	OpQSwap:  {"swap", FmtQ2},
	OpQCswap: {"cswap", FmtQ3},
	OpQPop:   {"pop", FmtQMeas},
}

// Name returns the canonical mnemonic. Note that the Qat and/or/xor/not
// mnemonics collide with the Tangled ones in the paper's tables; in
// assembly source they are distinguished by operand sigils (the assembler
// resolves "and @1,@2,@3" to qand), while the canonical names here carry a
// q prefix to stay unambiguous.
func (op Op) Name() string {
	if op < numOps {
		return opInfo[op].Name
	}
	return fmt.Sprintf("op?%d", uint8(op))
}

// Fmt returns the operand format for op.
func (op Op) Fmt() Format {
	if op < numOps {
		return opInfo[op].Format
	}
	return FmtNone
}

// IsQat reports whether op executes on the Qat coprocessor (including the
// meas/next/pop instructions that deliver results to Tangled registers).
func (op Op) IsQat() bool { return op >= OpQZero && op < numOps }

// WritesTangledReg reports whether op writes a Tangled general register.
func (op Op) WritesTangledReg() bool {
	switch op {
	case OpQMeas, OpQNext, OpQPop:
		return true
	case OpBrf, OpBrt, OpStore, OpSys, OpJumpr:
		return false
	default:
		return !op.IsQat()
	}
}

// Inst is one decoded instruction.
type Inst struct {
	Op  Op
	RD  uint8 // Tangled destination/source register ($d, or $c for branches)
	RS  uint8 // Tangled source register
	Imm int8  // lex/lhi/branch immediate (raw byte; sign interpretation at use)
	K   uint8 // had pattern index (imm4)
	QA  uint8 // Qat registers
	QB  uint8
	QC  uint8
}

// Words returns the encoded instruction length in 16-bit words.
func (i Inst) Words() int {
	switch i.Op.Fmt() {
	case FmtQ2, FmtQ3:
		return 2
	default:
		return 1
	}
}

// Major opcodes.
const (
	majLex  = 0x0
	majLhi  = 0x1
	majBrf  = 0x2
	majBrt  = 0x3
	majQat1 = 0x4
	majHad  = 0x5
	majMeas = 0x6
	majNext = 0x7
	majQatM = 0x8
	majPop  = 0x9
	majAlu2 = 0xE
	majAlu1 = 0xF
)

// Minor opcode tables.
var qat1Minor = map[Op]uint16{OpQZero: 0, OpQOne: 1, OpQNot: 2}
var qatmMinor = map[Op]uint16{
	OpQAnd: 0, OpQOr: 1, OpQXor: 2, OpQCcnot: 3, OpQCswap: 4, OpQCnot: 5, OpQSwap: 6,
}
var alu2Minor = map[Op]uint16{
	OpAdd: 0, OpAddf: 1, OpAnd: 2, OpCopy: 3, OpLoad: 4, OpMul: 5,
	OpMulf: 6, OpOr: 7, OpShift: 8, OpSlt: 9, OpStore: 10, OpXor: 11,
}
var alu1Minor = map[Op]uint16{
	OpFloat: 0, OpInt: 1, OpJumpr: 2, OpNeg: 3, OpNegf: 4, OpNot: 5,
	OpRecip: 6, OpSys: 7,
}

// Inverse minor tables, built at init.
var (
	qat1ByMinor [3]Op
	qatmByMinor [7]Op
	alu2ByMinor [12]Op
	alu1ByMinor [8]Op
)

func init() {
	for op, m := range qat1Minor {
		qat1ByMinor[m] = op
	}
	for op, m := range qatmMinor {
		qatmByMinor[m] = op
	}
	for op, m := range alu2Minor {
		alu2ByMinor[m] = op
	}
	for op, m := range alu1Minor {
		alu1ByMinor[m] = op
	}
}

// Encode produces the 1- or 2-word binary form of i.
func Encode(i Inst) ([]uint16, error) {
	if err := i.Validate(); err != nil {
		return nil, err
	}
	d := uint16(i.RD) & 0xF
	s := uint16(i.RS) & 0xF
	imm := uint16(uint8(i.Imm))
	switch i.Op {
	case OpLex:
		return []uint16{majLex<<12 | d<<8 | imm}, nil
	case OpLhi:
		return []uint16{majLhi<<12 | d<<8 | imm}, nil
	case OpBrf:
		return []uint16{majBrf<<12 | d<<8 | imm}, nil
	case OpBrt:
		return []uint16{majBrt<<12 | d<<8 | imm}, nil
	case OpQZero, OpQOne, OpQNot:
		return []uint16{majQat1<<12 | qat1Minor[i.Op]<<8 | uint16(i.QA)}, nil
	case OpQHad:
		return []uint16{majHad<<12 | uint16(i.K&0xF)<<8 | uint16(i.QA)}, nil
	case OpQMeas:
		return []uint16{majMeas<<12 | d<<8 | uint16(i.QA)}, nil
	case OpQNext:
		return []uint16{majNext<<12 | d<<8 | uint16(i.QA)}, nil
	case OpQPop:
		return []uint16{majPop<<12 | d<<8 | uint16(i.QA)}, nil
	case OpQAnd, OpQOr, OpQXor, OpQCcnot, OpQCswap, OpQCnot, OpQSwap:
		w0 := uint16(majQatM<<12) | qatmMinor[i.Op]<<8 | uint16(i.QA)
		w1 := uint16(i.QB)<<8 | uint16(i.QC)
		return []uint16{w0, w1}, nil
	case OpSys, OpFloat, OpInt, OpJumpr, OpNeg, OpNegf, OpNot, OpRecip:
		return []uint16{majAlu1<<12 | d<<8 | alu1Minor[i.Op]}, nil
	default:
		m, ok := alu2Minor[i.Op]
		if !ok {
			return nil, fmt.Errorf("isa: cannot encode op %s", i.Op.Name())
		}
		return []uint16{majAlu2<<12 | d<<8 | s<<4 | m}, nil
	}
}

// Decode reads one instruction starting at w0; w1 is the following word
// (used only by two-word forms; pass anything if unavailable and check the
// returned length). It returns the instruction and the number of words
// consumed.
func Decode(w0, w1 uint16) (Inst, int, error) {
	major := w0 >> 12
	d := uint8(w0 >> 8 & 0xF)
	low := uint8(w0)
	switch major {
	case majLex:
		return Inst{Op: OpLex, RD: d, Imm: int8(low)}, 1, nil
	case majLhi:
		return Inst{Op: OpLhi, RD: d, Imm: int8(low)}, 1, nil
	case majBrf:
		return Inst{Op: OpBrf, RD: d, Imm: int8(low)}, 1, nil
	case majBrt:
		return Inst{Op: OpBrt, RD: d, Imm: int8(low)}, 1, nil
	case majQat1:
		if int(d) >= len(qat1ByMinor) {
			return Inst{}, 1, fmt.Errorf("isa: illegal qat1 minor %d", d)
		}
		return Inst{Op: qat1ByMinor[d], QA: low}, 1, nil
	case majHad:
		return Inst{Op: OpQHad, K: d, QA: low}, 1, nil
	case majMeas:
		return Inst{Op: OpQMeas, RD: d, QA: low}, 1, nil
	case majNext:
		return Inst{Op: OpQNext, RD: d, QA: low}, 1, nil
	case majPop:
		return Inst{Op: OpQPop, RD: d, QA: low}, 1, nil
	case majQatM:
		if int(d) >= len(qatmByMinor) {
			return Inst{}, 1, fmt.Errorf("isa: illegal qatm minor %d", d)
		}
		op := qatmByMinor[d]
		return Inst{Op: op, QA: low, QB: uint8(w1 >> 8), QC: uint8(w1)}, 2, nil
	case majAlu2:
		m := w0 & 0xF
		if int(m) >= len(alu2ByMinor) {
			return Inst{}, 1, fmt.Errorf("isa: illegal alu2 minor %d", m)
		}
		return Inst{Op: alu2ByMinor[m], RD: d, RS: uint8(w0 >> 4 & 0xF)}, 1, nil
	case majAlu1:
		if int(low) >= len(alu1ByMinor) {
			return Inst{}, 1, fmt.Errorf("isa: illegal alu1 minor %d", low)
		}
		return Inst{Op: alu1ByMinor[low], RD: d}, 1, nil
	default:
		return Inst{}, 1, fmt.Errorf("isa: illegal major opcode %#x", major)
	}
}

// Validate checks field ranges for the instruction's format.
func (i Inst) Validate() error {
	if i.Op >= numOps {
		return fmt.Errorf("isa: invalid op %d", uint8(i.Op))
	}
	if i.RD >= NumRegs || i.RS >= NumRegs {
		return fmt.Errorf("isa: %s: register out of range", i.Op.Name())
	}
	if i.Op == OpQHad && i.K > 15 {
		return fmt.Errorf("isa: had pattern %d out of range", i.K)
	}
	return nil
}

// String renders the instruction in canonical assembly syntax.
func (i Inst) String() string {
	switch i.Op.Fmt() {
	case FmtRR:
		return fmt.Sprintf("%s %s,%s", i.Op.Name(), RegName(i.RD), RegName(i.RS))
	case FmtR:
		return fmt.Sprintf("%s %s", i.Op.Name(), RegName(i.RD))
	case FmtRI:
		return fmt.Sprintf("%s %s,%d", i.Op.Name(), RegName(i.RD), i.Imm)
	case FmtBr:
		return fmt.Sprintf("%s %s,%d", i.Op.Name(), RegName(i.RD), i.Imm)
	case FmtNone:
		return i.Op.Name()
	case FmtQ1:
		return fmt.Sprintf("%s @%d", i.Op.Name(), i.QA)
	case FmtQHad:
		return fmt.Sprintf("%s @%d,%d", i.Op.Name(), i.QA, i.K)
	case FmtQMeas:
		return fmt.Sprintf("%s %s,@%d", i.Op.Name(), RegName(i.RD), i.QA)
	case FmtQ2:
		return fmt.Sprintf("%s @%d,@%d", i.Op.Name(), i.QA, i.QB)
	case FmtQ3:
		return fmt.Sprintf("%s @%d,@%d,@%d", i.Op.Name(), i.QA, i.QB, i.QC)
	}
	return i.Op.Name()
}
