package isa

// Architectural effect metadata: which registers an instruction reads and
// writes, whether it touches memory, and how it can divert or stop control
// flow. This is the per-instruction ground truth that dataflow analyses
// (package lint) and any future forwarding/scoreboard logic share with the
// executing models — the tables here mirror the execute stage in package cpu
// and package qat exactly, and the cross-check test in effects_test.go pins
// the two together.

// Effects describes the architectural reads and writes of one decoded
// instruction. Tangled registers are bitmasks over the 16-entry file; Qat
// registers are listed explicitly (at most three read, two written).
type Effects struct {
	// ReadRegs and WriteRegs are bitmasks of Tangled registers read and
	// written (bit r = register $r).
	ReadRegs  uint16
	WriteRegs uint16

	// QReads and QWrites list the Qat registers read and written; only the
	// first NQReads / NQWrites entries are meaningful.
	QReads   [3]uint8
	NQReads  uint8
	QWrites  [2]uint8
	NQWrites uint8

	// MemRead / MemWrite report data-memory traffic (load / store).
	MemRead  bool
	MemWrite bool

	// Control reports that the instruction can divert the PC (brf, brt,
	// jumpr). MayHalt reports that it can stop the machine (sys with the
	// halt service code).
	Control bool
	MayHalt bool
}

// qread / qwrite append a Qat register to the effect sets, deduplicating so
// "xor @1,@1,@1" reports each register once.
func (e *Effects) qread(q uint8) {
	for i := uint8(0); i < e.NQReads; i++ {
		if e.QReads[i] == q {
			return
		}
	}
	e.QReads[e.NQReads] = q
	e.NQReads++
}

func (e *Effects) qwrite(q uint8) {
	for i := uint8(0); i < e.NQWrites; i++ {
		if e.QWrites[i] == q {
			return
		}
	}
	e.QWrites[e.NQWrites] = q
	e.NQWrites++
}

// ReadsQat reports whether q is in the instruction's Qat read set.
func (e Effects) ReadsQat(q uint8) bool {
	for i := uint8(0); i < e.NQReads; i++ {
		if e.QReads[i] == q {
			return true
		}
	}
	return false
}

// WritesQat reports whether q is in the instruction's Qat write set.
func (e Effects) WritesQat(q uint8) bool {
	for i := uint8(0); i < e.NQWrites; i++ {
		if e.QWrites[i] == q {
			return true
		}
	}
	return false
}

// InstEffects computes the architectural effects of i, following the execute
// semantics of package cpu (Tangled) and package qat (coprocessor):
//
//   - two-operand ALU ops read $d and $s and write $d; copy and load read
//     only $s;
//   - lhi reads $d (it preserves the low byte) while lex does not;
//   - sys reads $0 (the service selector) and $1 (the service argument);
//   - meas/next/pop read $d as the channel/index argument before writing
//     the result back into it, and read (never write) their Qat register;
//   - the multi-register Qat ops write their first operand (swap and cswap
//     also the second) and read every operand that feeds the result.
func InstEffects(i Inst) Effects {
	var e Effects
	d, s := uint16(1)<<(i.RD&0xF), uint16(1)<<(i.RS&0xF)
	switch i.Op {
	case OpAdd, OpAddf, OpAnd, OpMul, OpMulf, OpOr, OpShift, OpSlt, OpXor:
		e.ReadRegs = d | s
		e.WriteRegs = d
	case OpCopy:
		e.ReadRegs = s
		e.WriteRegs = d
	case OpLoad:
		e.ReadRegs = s
		e.WriteRegs = d
		e.MemRead = true
	case OpStore:
		e.ReadRegs = d | s
		e.MemWrite = true
	case OpFloat, OpInt, OpNeg, OpNegf, OpNot, OpRecip:
		e.ReadRegs = d
		e.WriteRegs = d
	case OpJumpr:
		e.ReadRegs = d
		e.Control = true
	case OpLex:
		e.WriteRegs = d
	case OpLhi:
		e.ReadRegs = d
		e.WriteRegs = d
	case OpBrf, OpBrt:
		e.ReadRegs = d
		e.Control = true
	case OpSys:
		e.ReadRegs = 1<<0 | 1<<1
		e.MayHalt = true
	case OpQZero, OpQOne, OpQHad:
		e.qwrite(i.QA)
	case OpQNot:
		e.qread(i.QA)
		e.qwrite(i.QA)
	case OpQMeas, OpQNext, OpQPop:
		e.ReadRegs = d
		e.WriteRegs = d
		e.qread(i.QA)
	case OpQAnd, OpQOr, OpQXor:
		e.qread(i.QB)
		e.qread(i.QC)
		e.qwrite(i.QA)
	case OpQCnot:
		e.qread(i.QA)
		e.qread(i.QB)
		e.qwrite(i.QA)
	case OpQCcnot:
		e.qread(i.QA)
		e.qread(i.QB)
		e.qread(i.QC)
		e.qwrite(i.QA)
	case OpQSwap:
		e.qread(i.QA)
		e.qread(i.QB)
		e.qwrite(i.QA)
		e.qwrite(i.QB)
	case OpQCswap:
		e.qread(i.QA)
		e.qread(i.QB)
		e.qread(i.QC)
		e.qwrite(i.QA)
		e.qwrite(i.QB)
	}
	return e
}
