package isa_test

import (
	"bytes"
	"testing"

	"tangled/internal/cpu"
	"tangled/internal/isa"
)

// effectsSamples covers every opcode with representative operands.
func effectsSamples() []isa.Inst {
	return []isa.Inst{
		{Op: isa.OpAdd, RD: 2, RS: 3},
		{Op: isa.OpAddf, RD: 2, RS: 3},
		{Op: isa.OpAnd, RD: 4, RS: 5},
		{Op: isa.OpBrf, RD: 6, Imm: 4},
		{Op: isa.OpBrt, RD: 6, Imm: 4},
		{Op: isa.OpCopy, RD: 2, RS: 7},
		{Op: isa.OpFloat, RD: 3},
		{Op: isa.OpInt, RD: 3},
		{Op: isa.OpJumpr, RD: 5},
		{Op: isa.OpLex, RD: 4, Imm: 9},
		{Op: isa.OpLhi, RD: 4, Imm: 9},
		{Op: isa.OpLoad, RD: 2, RS: 3},
		{Op: isa.OpMul, RD: 2, RS: 3},
		{Op: isa.OpMulf, RD: 2, RS: 3},
		{Op: isa.OpNeg, RD: 8},
		{Op: isa.OpNegf, RD: 8},
		{Op: isa.OpNot, RD: 8},
		{Op: isa.OpOr, RD: 2, RS: 3},
		{Op: isa.OpRecip, RD: 8},
		{Op: isa.OpShift, RD: 2, RS: 3},
		{Op: isa.OpSlt, RD: 2, RS: 3},
		{Op: isa.OpStore, RD: 2, RS: 3},
		{Op: isa.OpSys},
		{Op: isa.OpXor, RD: 2, RS: 3},
		{Op: isa.OpQZero, QA: 1},
		{Op: isa.OpQOne, QA: 1},
		{Op: isa.OpQNot, QA: 1},
		{Op: isa.OpQHad, QA: 1, K: 2},
		{Op: isa.OpQMeas, RD: 2, QA: 1},
		{Op: isa.OpQNext, RD: 2, QA: 1},
		{Op: isa.OpQPop, RD: 2, QA: 1},
		{Op: isa.OpQAnd, QA: 1, QB: 2, QC: 3},
		{Op: isa.OpQOr, QA: 1, QB: 2, QC: 3},
		{Op: isa.OpQXor, QA: 1, QB: 2, QC: 3},
		{Op: isa.OpQCnot, QA: 1, QB: 2},
		{Op: isa.OpQCcnot, QA: 1, QB: 2, QC: 3},
		{Op: isa.OpQSwap, QA: 1, QB: 2},
		{Op: isa.OpQCswap, QA: 1, QB: 2, QC: 3},
	}
}

// newEffectsMachine builds a machine whose register values are small,
// distinct and nonzero, with Qat registers prepared so every coprocessor op
// is well-defined.
func newEffectsMachine(t *testing.T, inst isa.Inst, out *bytes.Buffer) *cpu.Machine {
	t.Helper()
	m := cpu.New(6)
	m.Out = out
	for r := 0; r < isa.NumRegs; r++ {
		m.Regs[r] = uint16(r + 3)
	}
	if inst.Op == isa.OpSys {
		m.Regs[0] = cpu.SysPutInt
	}
	for q := uint8(0); q < 8; q++ {
		if _, _, err := m.Qat.Exec(isa.Inst{Op: isa.OpQHad, QA: q, K: q % 6}, 0); err != nil {
			t.Fatalf("prep @%d: %v", q, err)
		}
	}
	words, err := isa.Encode(inst)
	if err != nil {
		t.Fatalf("encode %s: %v", inst, err)
	}
	copy(m.Mem, words)
	return m
}

// TestEffectsMatchExecution pins the effect tables to the executing model:
// stepping one instruction must change exactly a subset of the declared
// Tangled write set, and perturbing any register outside the declared read
// set must not change the written values, the PC, or the output.
func TestEffectsMatchExecution(t *testing.T) {
	for _, inst := range effectsSamples() {
		inst := inst
		t.Run(inst.String(), func(t *testing.T) {
			e := isa.InstEffects(inst)
			var out bytes.Buffer
			m := newEffectsMachine(t, inst, &out)
			before := m.Regs
			if err := m.Step(); err != nil {
				t.Fatalf("step: %v", err)
			}
			for r := 0; r < isa.NumRegs; r++ {
				if m.Regs[r] != before[r] && e.WriteRegs&(1<<r) == 0 {
					t.Errorf("register $%d changed (%#x -> %#x) but is not in WriteRegs %016b",
						r, before[r], m.Regs[r], e.WriteRegs)
				}
			}
			basePC, baseRegs, baseOut := m.PC, m.Regs, out.String()

			for r := 0; r < isa.NumRegs; r++ {
				if e.ReadRegs&(1<<r) != 0 {
					continue
				}
				var out2 bytes.Buffer
				m2 := newEffectsMachine(t, inst, &out2)
				m2.Regs[r] ^= 0x0040 // perturb a register the op claims not to read
				if err := m2.Step(); err != nil {
					t.Fatalf("perturbed step ($%d): %v", r, err)
				}
				if m2.PC != basePC {
					t.Errorf("perturbing unread $%d changed PC: %#x vs %#x", r, m2.PC, basePC)
				}
				if out2.String() != baseOut {
					t.Errorf("perturbing unread $%d changed output", r)
				}
				for w := 0; w < isa.NumRegs; w++ {
					if e.WriteRegs&(1<<w) == 0 || w == r {
						continue
					}
					if m2.Regs[w] != baseRegs[w] {
						t.Errorf("perturbing unread $%d changed written $%d: %#x vs %#x",
							r, w, m2.Regs[w], baseRegs[w])
					}
				}
			}
		})
	}
}

// TestEffectsControlFlags pins the control/halt/memory flags.
func TestEffectsControlFlags(t *testing.T) {
	for _, inst := range effectsSamples() {
		e := isa.InstEffects(inst)
		wantControl := inst.Op == isa.OpBrf || inst.Op == isa.OpBrt || inst.Op == isa.OpJumpr
		if e.Control != wantControl {
			t.Errorf("%s: Control = %v, want %v", inst, e.Control, wantControl)
		}
		if (e.MayHalt) != (inst.Op == isa.OpSys) {
			t.Errorf("%s: MayHalt = %v", inst, e.MayHalt)
		}
		if e.MemRead != (inst.Op == isa.OpLoad) || e.MemWrite != (inst.Op == isa.OpStore) {
			t.Errorf("%s: MemRead/MemWrite = %v/%v", inst, e.MemRead, e.MemWrite)
		}
	}
}

// TestEffectsQatDedup checks that repeated Qat operands are reported once.
func TestEffectsQatDedup(t *testing.T) {
	e := isa.InstEffects(isa.Inst{Op: isa.OpQXor, QA: 7, QB: 7, QC: 7})
	if e.NQReads != 1 || e.NQWrites != 1 || !e.ReadsQat(7) || !e.WritesQat(7) {
		t.Errorf("xor @7,@7,@7 effects = %+v", e)
	}
	if e.ReadsQat(3) || e.WritesQat(3) {
		t.Errorf("unexpected @3 membership")
	}
}
