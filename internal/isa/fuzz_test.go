package isa

import "testing"

// FuzzDecode: no 16-bit word pair may panic the decoder, and every
// successful decode must re-encode to the same bits.
func FuzzDecode(f *testing.F) {
	f.Add(uint16(0x0000), uint16(0x0000))
	f.Add(uint16(0xE012), uint16(0x0000))
	f.Add(uint16(0x8001), uint16(0x0203))
	f.Add(uint16(0xFFFF), uint16(0xFFFF))
	f.Add(uint16(0x5F80), uint16(0x0000))
	f.Fuzz(func(t *testing.T, w0, w1 uint16) {
		inst, n, err := Decode(w0, w1)
		if err != nil {
			if n != 1 {
				t.Fatalf("error decode consumed %d words", n)
			}
			return
		}
		words, err := Encode(inst)
		if err != nil {
			t.Fatalf("decoded %v but cannot encode: %v", inst, err)
		}
		if len(words) != n {
			t.Fatalf("length mismatch %d vs %d", len(words), n)
		}
		if words[0] != w0 {
			t.Fatalf("re-encode %04x != %04x (%v)", words[0], w0, inst)
		}
		if n == 2 && words[1] != w1 {
			t.Fatalf("re-encode w1 %04x != %04x", words[1], w1)
		}
	})
}
