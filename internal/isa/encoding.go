package isa

import "fmt"

// The paper stresses that the binary encoding is a free choice: each
// student picked one with AIK and "were permitted to change the
// instruction encoding for each project". The Encoding interface isolates
// that choice; everything above it (assembler syntax, machine semantics,
// pipelines) is encoding-agnostic. Two concrete codecs are provided: the
// package-default Primary layout (documented at the top of this package)
// and an intentionally different Student layout, to demonstrate — and
// property-test — that the ISA fits more than one way.

// Encoding is a binary instruction codec.
type Encoding interface {
	// Name identifies the codec.
	Name() string
	// Encode produces the 1- or 2-word binary form.
	Encode(Inst) ([]uint16, error)
	// Decode reads one instruction (w1 is the following word, used by
	// two-word forms) and reports the words consumed.
	Decode(w0, w1 uint16) (Inst, int, error)
}

// Primary is the default codec used throughout this repository.
var Primary Encoding = primaryEnc{}

type primaryEnc struct{}

func (primaryEnc) Name() string                            { return "primary" }
func (primaryEnc) Encode(i Inst) ([]uint16, error)         { return Encode(i) }
func (primaryEnc) Decode(w0, w1 uint16) (Inst, int, error) { return Decode(w0, w1) }

// Student is an alternative layout in the spirit of a different team's
// project: the major opcode lives in the LOW nibble, register fields are
// swapped relative to Primary, and the minor-opcode assignments are
// shuffled. Word shapes:
//
//	[15:8]=imm8  [7:4]=d [3:0]=0x1  lex
//	[15:8]=imm8  [7:4]=d [3:0]=0x2  lhi
//	[15:8]=off8  [7:4]=c [3:0]=0x3  brf
//	[15:8]=off8  [7:4]=c [3:0]=0x4  brt
//	[15:8]=@a [7:4]=minor [3:0]=0x5 qat1 (0 not, 1 zero, 2 one)
//	[15:8]=@a [7:4]=imm4  [3:0]=0x6 had
//	[15:8]=@a [7:4]=d     [3:0]=0x7 meas
//	[15:8]=@a [7:4]=d     [3:0]=0x8 next
//	[15:8]=@a [7:4]=d     [3:0]=0x9 pop
//	[15:8]=@a [7:4]=minor [3:0]=0xA qatm (two words; w1 = @c<<8 | @b)
//	[15:12]=s [11:8]=d [7:4]=minor [3:0]=0xB alu2
//	[15:8]=minor [7:4]=d [3:0]=0xC alu1
//
// Majors 0x0, 0xD, 0xE and 0xF are illegal, so the all-zero word traps —
// a deliberate difference from Primary, where 0x0000 decodes as lex $0,0.
var Student Encoding = studentEnc{}

type studentEnc struct{}

func (studentEnc) Name() string { return "student" }

// Student minor tables (shuffled relative to Primary).
var sQat1Minor = map[Op]uint16{OpQNot: 0, OpQZero: 1, OpQOne: 2}
var sQatmMinor = map[Op]uint16{
	OpQXor: 0, OpQAnd: 1, OpQOr: 2, OpQCnot: 3, OpQSwap: 4, OpQCcnot: 5, OpQCswap: 6,
}
var sAlu2Minor = map[Op]uint16{
	OpXor: 0, OpAdd: 1, OpAnd: 2, OpOr: 3, OpCopy: 4, OpLoad: 5, OpStore: 6,
	OpMul: 7, OpShift: 8, OpSlt: 9, OpAddf: 10, OpMulf: 11,
}
var sAlu1Minor = map[Op]uint16{
	OpSys: 0, OpJumpr: 1, OpNot: 2, OpNeg: 3, OpNegf: 4, OpFloat: 5,
	OpInt: 6, OpRecip: 7,
}

var (
	sQat1ByMinor [3]Op
	sQatmByMinor [7]Op
	sAlu2ByMinor [12]Op
	sAlu1ByMinor [8]Op
)

func init() {
	for op, m := range sQat1Minor {
		sQat1ByMinor[m] = op
	}
	for op, m := range sQatmMinor {
		sQatmByMinor[m] = op
	}
	for op, m := range sAlu2Minor {
		sAlu2ByMinor[m] = op
	}
	for op, m := range sAlu1Minor {
		sAlu1ByMinor[m] = op
	}
}

func (studentEnc) Encode(i Inst) ([]uint16, error) {
	if err := i.Validate(); err != nil {
		return nil, err
	}
	d := uint16(i.RD) & 0xF
	s := uint16(i.RS) & 0xF
	imm := uint16(uint8(i.Imm))
	qa := uint16(i.QA)
	switch i.Op {
	case OpLex:
		return []uint16{imm<<8 | d<<4 | 0x1}, nil
	case OpLhi:
		return []uint16{imm<<8 | d<<4 | 0x2}, nil
	case OpBrf:
		return []uint16{imm<<8 | d<<4 | 0x3}, nil
	case OpBrt:
		return []uint16{imm<<8 | d<<4 | 0x4}, nil
	case OpQNot, OpQZero, OpQOne:
		return []uint16{qa<<8 | sQat1Minor[i.Op]<<4 | 0x5}, nil
	case OpQHad:
		return []uint16{qa<<8 | uint16(i.K&0xF)<<4 | 0x6}, nil
	case OpQMeas:
		return []uint16{qa<<8 | d<<4 | 0x7}, nil
	case OpQNext:
		return []uint16{qa<<8 | d<<4 | 0x8}, nil
	case OpQPop:
		return []uint16{qa<<8 | d<<4 | 0x9}, nil
	case OpQXor, OpQAnd, OpQOr, OpQCnot, OpQSwap, OpQCcnot, OpQCswap:
		w0 := qa<<8 | sQatmMinor[i.Op]<<4 | 0xA
		w1 := uint16(i.QC)<<8 | uint16(i.QB)
		return []uint16{w0, w1}, nil
	case OpSys, OpJumpr, OpNot, OpNeg, OpNegf, OpFloat, OpInt, OpRecip:
		return []uint16{sAlu1Minor[i.Op]<<8 | d<<4 | 0xC}, nil
	default:
		m, ok := sAlu2Minor[i.Op]
		if !ok {
			return nil, fmt.Errorf("isa: student encoding cannot encode %s", i.Op.Name())
		}
		return []uint16{s<<12 | d<<8 | m<<4 | 0xB}, nil
	}
}

func (studentEnc) Decode(w0, w1 uint16) (Inst, int, error) {
	major := w0 & 0xF
	hi8 := uint8(w0 >> 8)
	f2 := uint8(w0 >> 4 & 0xF)
	switch major {
	case 0x1:
		return Inst{Op: OpLex, RD: f2, Imm: int8(hi8)}, 1, nil
	case 0x2:
		return Inst{Op: OpLhi, RD: f2, Imm: int8(hi8)}, 1, nil
	case 0x3:
		return Inst{Op: OpBrf, RD: f2, Imm: int8(hi8)}, 1, nil
	case 0x4:
		return Inst{Op: OpBrt, RD: f2, Imm: int8(hi8)}, 1, nil
	case 0x5:
		if int(f2) >= len(sQat1ByMinor) {
			return Inst{}, 1, fmt.Errorf("isa: student: bad qat1 minor %d", f2)
		}
		return Inst{Op: sQat1ByMinor[f2], QA: hi8}, 1, nil
	case 0x6:
		return Inst{Op: OpQHad, QA: hi8, K: f2}, 1, nil
	case 0x7:
		return Inst{Op: OpQMeas, RD: f2, QA: hi8}, 1, nil
	case 0x8:
		return Inst{Op: OpQNext, RD: f2, QA: hi8}, 1, nil
	case 0x9:
		return Inst{Op: OpQPop, RD: f2, QA: hi8}, 1, nil
	case 0xA:
		if int(f2) >= len(sQatmByMinor) {
			return Inst{}, 1, fmt.Errorf("isa: student: bad qatm minor %d", f2)
		}
		return Inst{Op: sQatmByMinor[f2], QA: hi8, QB: uint8(w1), QC: uint8(w1 >> 8)}, 2, nil
	case 0xB:
		m := w0 >> 4 & 0xF
		if int(m) >= len(sAlu2ByMinor) {
			return Inst{}, 1, fmt.Errorf("isa: student: bad alu2 minor %d", m)
		}
		return Inst{Op: sAlu2ByMinor[m], RD: uint8(w0 >> 8 & 0xF), RS: uint8(w0 >> 12)}, 1, nil
	case 0xC:
		m := w0 >> 8
		if int(m) >= len(sAlu1ByMinor) {
			return Inst{}, 1, fmt.Errorf("isa: student: bad alu1 minor %d", m)
		}
		return Inst{Op: sAlu1ByMinor[m], RD: f2}, 1, nil
	default:
		return Inst{}, 1, fmt.Errorf("isa: student: illegal major %#x", major)
	}
}

// Transcode re-encodes a whole word image from one codec to another.
// Instruction boundaries are taken from the source codec; any word that
// fails to decode is copied through unchanged (data words).
func Transcode(words []uint16, from, to Encoding) ([]uint16, error) {
	var out []uint16
	for i := 0; i < len(words); {
		var w1 uint16
		if i+1 < len(words) {
			w1 = words[i+1]
		}
		inst, n, err := from.Decode(words[i], w1)
		if err != nil {
			out = append(out, words[i])
			i++
			continue
		}
		enc, err := to.Encode(inst)
		if err != nil {
			return nil, fmt.Errorf("isa: transcode at word %d: %w", i, err)
		}
		out = append(out, enc...)
		i += n
	}
	return out, nil
}
