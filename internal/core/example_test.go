package core_test

import (
	"fmt"

	"tangled/internal/aob"
	"tangled/internal/core"
	"tangled/internal/rex"
)

// The paper's Figure 9 program: factor 15 by multiplying two independent
// Hadamard superpositions and measuring non-destructively.
func Example() {
	m := core.NewAoB(8)
	b := core.H(m, 4, 0x0F)
	c := core.H(m, 4, 0xF0)
	e := b.Mul(c).Eq(core.Mk(m, 8, 15))
	core.ChannelsWhere[*aob.Vector](m, e, func(ch uint64) bool {
		fmt.Printf("%d x %d\n", ch%16, ch/16)
		return true
	})
	// Output:
	// 15 x 1
	// 5 x 3
	// 3 x 5
	// 1 x 15
}

// Reductions summarize a superposition in O(1)-ish operations instead of
// enumerating channels.
func ExamplePint_Prob() {
	m := core.NewAoB(8)
	sum := core.H(m, 4, 0x0F).Add(core.H(m, 4, 0xF0))
	fmt.Println("P(sum == 15) =", sum.Prob(15), "/ 256")
	fmt.Println("possible(30):", sum.Possible(30)) // 15 + 15
	fmt.Println("possible(31):", sum.Possible(31)) // beyond any operand pair
	// Output:
	// P(sum == 15) = 16 / 256
	// possible(30): true
	// possible(31): false
}

// The rex backend runs the same programs far beyond the 16-way hardware
// limit. Note the interleaved channel sets (x on even, y on odd): like a
// BDD, the tree-compressed representation is sensitive to variable order,
// and interleaving keeps the equality indicator linear-sized.
func ExampleNewRex() {
	m := core.NewRex(rex.MustSpace(40, 12))
	x := core.H(m, 20, 0x5555555555)
	y := core.H(m, 20, 0xAAAAAAAAAA)
	eq := x.Eq(y)
	fmt.Println("channels where x == y:", m.Pop(eq))
	// Output:
	// channels where x == y: 1048576
}
