// Package core implements the parallel bit pattern (PBP) programming model
// that the Tangled/Qat system executes: pbits (pattern bits), pattern
// integers (the paper's "pint" word-level layer, Figure 9), entangled
// Hadamard initialization over disjoint channel sets, gate-level word
// arithmetic, and non-destructive measurement.
//
// The model is expressed over an abstract Machine so the same programs run
// on two substrates:
//
//   - the direct AoB backend (package aob), which is what the Qat
//     coprocessor implements in hardware for up to 16-way entanglement, and
//   - the RE backend (package re), the run-length compressed representation
//     the paper prescribes for higher entanglement.
//
// The semantics of every operation are identical across backends; the tests
// exploit this by diffing the two.
package core

import (
	"fmt"
	"math/bits"
	"math/rand"
	"sort"

	"tangled/internal/aob"
	"tangled/internal/re"
	"tangled/internal/rex"
)

// Machine abstracts a PBP execution substrate over pbit values of type V.
// All values produced by one Machine share its entanglement geometry.
type Machine[V any] interface {
	// Ways returns the entanglement degree E.
	Ways() int
	// Channels returns 2^E.
	Channels() uint64
	// Zero returns the pbit that is 0 in every channel.
	Zero() V
	// One returns the pbit that is 1 in every channel.
	One() V
	// Had returns the k-th standard Hadamard pattern (bit k of the channel
	// number), for 0 <= k < Ways.
	Had(k int) V
	// And, Or, Xor, Not are channel-wise logic.
	And(a, b V) V
	Or(a, b V) V
	Xor(a, b V) V
	Not(a V) V
	// Get samples channel ch non-destructively.
	Get(a V, ch uint64) bool
	// Next returns the lowest channel > ch holding a 1, or 0 if none.
	Next(a V, ch uint64) uint64
	// PopAfter counts 1 channels strictly above ch.
	PopAfter(a V, ch uint64) uint64
	// Pop counts all 1 channels.
	Pop(a V) uint64
	// Equal reports channel-wise equality (test/diagnostic aid).
	Equal(a, b V) bool
}

// AoBMachine executes the PBP model on uncompressed aob.Vector values —
// the direct analog of Qat's register file contents.
type AoBMachine struct {
	ways int
}

// NewAoB returns an AoB-backed machine of the given entanglement degree.
func NewAoB(ways int) AoBMachine { return AoBMachine{ways: ways} }

func (m AoBMachine) Ways() int         { return m.ways }
func (m AoBMachine) Channels() uint64  { return uint64(1) << uint(m.ways) }
func (m AoBMachine) Zero() *aob.Vector { return aob.New(m.ways) }
func (m AoBMachine) One() *aob.Vector  { return aob.OneVector(m.ways) }
func (m AoBMachine) Had(k int) *aob.Vector {
	return aob.HadVector(m.ways, k)
}
func (m AoBMachine) And(a, b *aob.Vector) *aob.Vector {
	d := aob.New(m.ways)
	d.And(a, b)
	return d
}
func (m AoBMachine) Or(a, b *aob.Vector) *aob.Vector {
	d := aob.New(m.ways)
	d.Or(a, b)
	return d
}
func (m AoBMachine) Xor(a, b *aob.Vector) *aob.Vector {
	d := aob.New(m.ways)
	d.Xor(a, b)
	return d
}
func (m AoBMachine) Not(a *aob.Vector) *aob.Vector {
	d := a.Clone()
	d.Not()
	return d
}
func (m AoBMachine) Get(a *aob.Vector, ch uint64) bool        { return a.Get(ch) }
func (m AoBMachine) Next(a *aob.Vector, ch uint64) uint64     { return a.Next(ch) }
func (m AoBMachine) PopAfter(a *aob.Vector, ch uint64) uint64 { return a.PopAfter(ch) }
func (m AoBMachine) Pop(a *aob.Vector) uint64                 { return a.Pop() }
func (m AoBMachine) Equal(a, b *aob.Vector) bool              { return a.Equal(b) }

var _ Machine[*aob.Vector] = AoBMachine{}

// REMachine executes the PBP model on run-length compressed re.Pattern
// values, enabling entanglement degrees far beyond AoB's practical limit.
type REMachine struct {
	sp *re.Space
}

// NewRE returns an RE-backed machine over the given pattern space.
func NewRE(sp *re.Space) REMachine { return REMachine{sp: sp} }

func (m REMachine) Ways() int                                { return m.sp.Ways() }
func (m REMachine) Channels() uint64                         { return m.sp.Channels() }
func (m REMachine) Zero() *re.Pattern                        { return m.sp.Zero() }
func (m REMachine) One() *re.Pattern                         { return m.sp.One() }
func (m REMachine) Had(k int) *re.Pattern                    { return m.sp.Had(k) }
func (m REMachine) And(a, b *re.Pattern) *re.Pattern         { return a.And(b) }
func (m REMachine) Or(a, b *re.Pattern) *re.Pattern          { return a.Or(b) }
func (m REMachine) Xor(a, b *re.Pattern) *re.Pattern         { return a.Xor(b) }
func (m REMachine) Not(a *re.Pattern) *re.Pattern            { return a.Not() }
func (m REMachine) Get(a *re.Pattern, ch uint64) bool        { return a.Get(ch) }
func (m REMachine) Next(a *re.Pattern, ch uint64) uint64     { return a.Next(ch) }
func (m REMachine) PopAfter(a *re.Pattern, ch uint64) uint64 { return a.PopAfter(ch) }
func (m REMachine) Pop(a *re.Pattern) uint64                 { return a.Pop() }
func (m REMachine) Equal(a, b *re.Pattern) bool              { return a.Equal(b) }

var _ Machine[*re.Pattern] = REMachine{}

// RexMachine executes the PBP model on periodic (nested) run-length
// compressed rex.Pattern values — the representation that keeps gate-level
// computations exponentially compressed even when their period is small.
type RexMachine struct {
	sp *rex.Space
}

// NewRex returns a machine over a periodic-RLE pattern space.
func NewRex(sp *rex.Space) RexMachine { return RexMachine{sp: sp} }

func (m RexMachine) Ways() int                             { return m.sp.Ways() }
func (m RexMachine) Channels() uint64                      { return m.sp.Channels() }
func (m RexMachine) Zero() *rex.Pattern                    { return m.sp.Zero() }
func (m RexMachine) One() *rex.Pattern                     { return m.sp.One() }
func (m RexMachine) Had(k int) *rex.Pattern                { return m.sp.Had(k) }
func (m RexMachine) And(a, b *rex.Pattern) *rex.Pattern    { return a.And(b) }
func (m RexMachine) Or(a, b *rex.Pattern) *rex.Pattern     { return a.Or(b) }
func (m RexMachine) Xor(a, b *rex.Pattern) *rex.Pattern    { return a.Xor(b) }
func (m RexMachine) Not(a *rex.Pattern) *rex.Pattern       { return a.Not() }
func (m RexMachine) Get(a *rex.Pattern, ch uint64) bool    { return a.Get(ch) }
func (m RexMachine) Next(a *rex.Pattern, ch uint64) uint64 { return a.Next(ch) }
func (m RexMachine) PopAfter(a *rex.Pattern, ch uint64) uint64 {
	return a.PopAfter(ch)
}
func (m RexMachine) Pop(a *rex.Pattern) uint64    { return a.Pop() }
func (m RexMachine) Equal(a, b *rex.Pattern) bool { return a.Equal(b) }

var _ Machine[*rex.Pattern] = RexMachine{}

// Pint is a pattern integer: a fixed-width unsigned integer whose bits are
// pbits, least significant first. All bits share one Machine, so a Pint is
// simultaneously every value its channels encode — the paper's entangled
// superposed word.
type Pint[V any] struct {
	m    Machine[V]
	bits []V
}

// Width returns the number of pbits.
func (p Pint[V]) Width() int { return len(p.bits) }

// Bit returns the i-th pbit (LSB = 0).
func (p Pint[V]) Bit(i int) V { return p.bits[i] }

// Machine returns the executing substrate.
func (p Pint[V]) Machine() Machine[V] { return p.m }

// Mk builds the width-bit constant pint holding value in every channel —
// the paper's pint_mk.
func Mk[V any](m Machine[V], width int, value uint64) Pint[V] {
	checkWidth(width)
	bits := make([]V, width)
	for i := range bits {
		if (value>>uint(i))&1 == 1 {
			bits[i] = m.One()
		} else {
			bits[i] = m.Zero()
		}
	}
	return Pint[V]{m: m, bits: bits}
}

func checkWidth(width int) {
	if width < 0 || width > 64 {
		panic(fmt.Sprintf("core: pint width %d out of range [0,64]", width))
	}
}

// H builds a width-bit Hadamard-superposed pint — the paper's pint_h. The
// set bits of mask name the entanglement channel sets used, lowest first:
// H(m, 4, 0x0F) builds a 4-bit value superposing 0..15 over channel sets
// 0..3, while H(m, 4, 0xF0) superposes the same values over channel sets
// 4..7. Using disjoint masks for two pints makes them independently
// entangled — multiplying them then explores the full cross product, which
// is the trick at the heart of the Figure 9 factoring example.
func H[V any](m Machine[V], width int, mask uint64) Pint[V] {
	checkWidth(width)
	if bits.OnesCount64(mask) != width {
		panic(fmt.Sprintf("core: H mask %#x names %d channel sets, want %d",
			mask, bits.OnesCount64(mask), width))
	}
	out := make([]V, 0, width)
	for k := 0; k < 64 && len(out) < width; k++ {
		if (mask>>uint(k))&1 == 1 {
			if k >= m.Ways() {
				panic(fmt.Sprintf("core: H channel set %d exceeds machine ways %d", k, m.Ways()))
			}
			out = append(out, m.Had(k))
		}
	}
	return Pint[V]{m: m, bits: out}
}

// FromBits wraps existing pbits (LSB first) as a Pint.
func FromBits[V any](m Machine[V], b []V) Pint[V] {
	cp := make([]V, len(b))
	copy(cp, b)
	return Pint[V]{m: m, bits: cp}
}

// Extend returns p widened to width bits with zero pbits appended.
func (p Pint[V]) Extend(width int) Pint[V] {
	checkWidth(width)
	if width < len(p.bits) {
		panic("core: Extend would truncate; use Truncate")
	}
	out := make([]V, width)
	copy(out, p.bits)
	for i := len(p.bits); i < width; i++ {
		out[i] = p.m.Zero()
	}
	return Pint[V]{m: p.m, bits: out}
}

// Truncate returns the low width bits of p.
func (p Pint[V]) Truncate(width int) Pint[V] {
	checkWidth(width)
	if width > len(p.bits) {
		panic("core: Truncate would widen; use Extend")
	}
	out := make([]V, width)
	copy(out, p.bits[:width])
	return Pint[V]{m: p.m, bits: out}
}

// align zero-extends the narrower operand; both results have equal width.
func (p Pint[V]) align(q Pint[V]) (Pint[V], Pint[V]) {
	if p.m != q.m {
		panic("core: pints from different machines")
	}
	w := len(p.bits)
	if len(q.bits) > w {
		w = len(q.bits)
	}
	return p.Extend(w), q.Extend(w)
}

// And returns the bitwise AND of two pints.
func (p Pint[V]) And(q Pint[V]) Pint[V] { return p.zip(q, p.m.And) }

// Or returns the bitwise OR of two pints.
func (p Pint[V]) Or(q Pint[V]) Pint[V] { return p.zip(q, p.m.Or) }

// Xor returns the bitwise XOR of two pints.
func (p Pint[V]) Xor(q Pint[V]) Pint[V] { return p.zip(q, p.m.Xor) }

func (p Pint[V]) zip(q Pint[V], f func(a, b V) V) Pint[V] {
	a, b := p.align(q)
	out := make([]V, len(a.bits))
	for i := range out {
		out[i] = f(a.bits[i], b.bits[i])
	}
	return Pint[V]{m: p.m, bits: out}
}

// Not returns the bitwise complement of p (same width).
func (p Pint[V]) Not() Pint[V] {
	out := make([]V, len(p.bits))
	for i := range out {
		out[i] = p.m.Not(p.bits[i])
	}
	return Pint[V]{m: p.m, bits: out}
}

// Add returns p + q, one bit wider than the wider operand (the carry out).
// It is a textbook ripple-carry adder built from channel-wise gates — PBP
// arithmetic is word-level arithmetic performed on every channel at once.
func (p Pint[V]) Add(q Pint[V]) Pint[V] {
	a, b := p.align(q)
	m := p.m
	w := len(a.bits)
	out := make([]V, w+1)
	carry := m.Zero()
	for i := 0; i < w; i++ {
		axb := m.Xor(a.bits[i], b.bits[i])
		out[i] = m.Xor(axb, carry)
		carry = m.Or(m.And(a.bits[i], b.bits[i]), m.And(carry, axb))
	}
	out[w] = carry
	return Pint[V]{m: m, bits: out}
}

// AddMod returns (p + q) mod 2^width where width is the wider operand's
// width — the fixed-width wraparound flavor.
func (p Pint[V]) AddMod(q Pint[V]) Pint[V] {
	a, _ := p.align(q)
	return p.Add(q).Truncate(len(a.bits))
}

// Mul returns p * q at full width (p.Width + q.Width bits), via shift-add
// of gated partial products — the paper's pint_mul.
func (p Pint[V]) Mul(q Pint[V]) Pint[V] {
	if p.m != q.m {
		panic("core: pints from different machines")
	}
	m := p.m
	wp, wq := len(p.bits), len(q.bits)
	acc := Mk(m, wp+wq, 0)
	for j := 0; j < wq; j++ {
		// Partial product: p AND q[j], shifted left j.
		pp := make([]V, wp+wq)
		for i := 0; i < j; i++ {
			pp[i] = m.Zero()
		}
		for i := 0; i < wp; i++ {
			pp[i+j] = m.And(p.bits[i], q.bits[j])
		}
		for i := j + wp; i < wp+wq; i++ {
			pp[i] = m.Zero()
		}
		acc = acc.Add(Pint[V]{m: m, bits: pp}).Truncate(wp + wq)
	}
	return acc
}

// Sub returns p - q at the wider operand's width, wrapping modulo 2^width
// (two's complement), built as p + NOT q + 1 on the ripple-carry chain.
func (p Pint[V]) Sub(q Pint[V]) Pint[V] {
	a, b := p.align(q)
	m := p.m
	w := len(a.bits)
	out := make([]V, w)
	carry := m.One() // +1 of the two's complement
	for i := 0; i < w; i++ {
		nb := m.Not(b.bits[i])
		axb := m.Xor(a.bits[i], nb)
		out[i] = m.Xor(axb, carry)
		carry = m.Or(m.And(a.bits[i], nb), m.And(carry, axb))
	}
	return Pint[V]{m: m, bits: out}
}

// Neg returns the two's complement negation of p at p's width.
func (p Pint[V]) Neg() Pint[V] {
	return Mk(p.m, len(p.bits), 0).Sub(p)
}

// Dec returns p - 1 at p's width (wrapping).
func (p Pint[V]) Dec() Pint[V] {
	return p.Sub(Mk(p.m, len(p.bits), 1))
}

// Inc returns p + 1 at p's width (wrapping).
func (p Pint[V]) Inc() Pint[V] {
	return p.AddMod(Mk(p.m, len(p.bits), 1))
}

// IsZero returns the pbit that is 1 where p encodes zero.
func (p Pint[V]) IsZero() V {
	return p.Eq(Mk(p.m, len(p.bits), 0))
}

// Eq returns the single pbit that is 1 exactly in the channels where p and
// q encode the same value — the paper's pint_eq. Differing widths compare
// with zero extension.
func (p Pint[V]) Eq(q Pint[V]) V {
	a, b := p.align(q)
	m := p.m
	acc := m.One()
	for i := range a.bits {
		eq := m.Not(m.Xor(a.bits[i], b.bits[i]))
		acc = m.And(acc, eq)
	}
	return acc
}

// Ne returns the pbit 1 where the values differ.
func (p Pint[V]) Ne(q Pint[V]) V { return p.m.Not(p.Eq(q)) }

// Lt returns the pbit 1 in channels where p < q as unsigned integers,
// computed with a ripple borrow chain.
func (p Pint[V]) Lt(q Pint[V]) V {
	a, b := p.align(q)
	m := p.m
	borrow := m.Zero()
	for i := range a.bits {
		na := m.Not(a.bits[i])
		xnor := m.Not(m.Xor(a.bits[i], b.bits[i]))
		borrow = m.Or(m.And(na, b.bits[i]), m.And(xnor, borrow))
	}
	return borrow
}

// Le returns the pbit p <= q.
func (p Pint[V]) Le(q Pint[V]) V { return p.m.Not(q.Lt(p)) }

// Gt returns the pbit p > q.
func (p Pint[V]) Gt(q Pint[V]) V { return q.Lt(p) }

// Ge returns the pbit p >= q.
func (p Pint[V]) Ge(q Pint[V]) V { return p.m.Not(p.Lt(q)) }

// ShiftLeft returns p << n, widened by n bits.
func (p Pint[V]) ShiftLeft(n int) Pint[V] {
	out := make([]V, len(p.bits)+n)
	for i := 0; i < n; i++ {
		out[i] = p.m.Zero()
	}
	copy(out[n:], p.bits)
	return Pint[V]{m: p.m, bits: out}
}

// Mux returns, channel-wise, q where sel is 1 and p where sel is 0 — the
// cswap-as-multiplexer view from the paper.
func (p Pint[V]) Mux(q Pint[V], sel V) Pint[V] {
	a, b := p.align(q)
	m := p.m
	ns := m.Not(sel)
	out := make([]V, len(a.bits))
	for i := range out {
		out[i] = m.Or(m.And(a.bits[i], ns), m.And(b.bits[i], sel))
	}
	return Pint[V]{m: m, bits: out}
}

// ValueAt reads the integer encoded at entanglement channel ch — a
// non-destructive word-level measurement of one channel.
func (p Pint[V]) ValueAt(ch uint64) uint64 {
	var v uint64
	for i, b := range p.bits {
		if p.m.Get(b, ch) {
			v |= uint64(1) << uint(i)
		}
	}
	return v
}

// Measurement is the result of a full non-destructive measurement: each
// distinct value present in the superposition with its channel count
// (probability in parts per 2^E).
type Measurement struct {
	Value uint64
	Count uint64
}

// MeasureAll enumerates every channel and tallies the distinct values —
// the paper's pint_measure, which "returns all values in the entangled
// superposition". Cost is O(2^E * width); intended for AoB-scale machines.
// Results are sorted by value.
func (p Pint[V]) MeasureAll() []Measurement {
	counts := map[uint64]uint64{}
	n := p.m.Channels()
	for ch := uint64(0); ch < n; ch++ {
		counts[p.ValueAt(ch)]++
	}
	out := make([]Measurement, 0, len(counts))
	for v, c := range counts {
		out = append(out, Measurement{Value: v, Count: c})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Value < out[j].Value })
	return out
}

// Values returns just the sorted distinct values from MeasureAll.
func (p Pint[V]) Values() []uint64 {
	ms := p.MeasureAll()
	out := make([]uint64, len(ms))
	for i, m := range ms {
		out[i] = m.Value
	}
	return out
}

// representable reports whether v fits in p's width (a wider v can never
// occur, and must not be silently truncated into a false match).
func (p Pint[V]) representable(v uint64) bool {
	return len(p.bits) >= 64 || v < uint64(1)<<uint(len(p.bits))
}

// Possible reports whether value v occurs anywhere in the superposition,
// without enumerating channels: it builds the equality indicator pbit and
// applies the ANY reduction — O(width) gate ops regardless of 2^E.
func (p Pint[V]) Possible(v uint64) bool {
	if !p.representable(v) {
		return false
	}
	ind := p.Eq(Mk(p.m, len(p.bits), v))
	return p.m.Next(ind, 0) != 0 || p.m.Get(ind, 0)
}

// Certain reports whether every channel encodes exactly v (ALL reduction).
func (p Pint[V]) Certain(v uint64) bool {
	if !p.representable(v) {
		return false
	}
	ind := p.Eq(Mk(p.m, len(p.bits), v))
	return !anyV(p.m, p.m.Not(ind))
}

// Prob returns the probability of value v in parts per 2^E, using the POP
// reduction on the indicator pbit.
func (p Pint[V]) Prob(v uint64) uint64 {
	if !p.representable(v) {
		return 0
	}
	ind := p.Eq(Mk(p.m, len(p.bits), v))
	var n uint64
	if p.m.Get(ind, 0) {
		n = 1
	}
	return n + p.m.PopAfter(ind, 0)
}

func anyV[V any](m Machine[V], a V) bool {
	return m.Next(a, 0) != 0 || m.Get(a, 0)
}

// Any exposes the ANY reduction on a raw pbit.
func Any[V any](m Machine[V], a V) bool { return anyV(m, a) }

// All exposes the ALL reduction on a raw pbit, composed per the paper as
// NOT(ANY(NOT x)).
func All[V any](m Machine[V], a V) bool { return !anyV(m, m.Not(a)) }

// Sample reads the value at a uniformly random entanglement channel — the
// closest PBP analog of a quantum measurement, which returns one
// probability-weighted outcome per run. Unlike the quantum case the
// superposition survives (Sample may be called forever), and unlike the
// quantum case this is the WEAK way to use the model: MeasureAll,
// Possible, Prob and ChannelsWhere extract complete answers that a
// quantum computer fundamentally cannot ("there is no number of runs
// sufficient to guarantee that all values in the entangled superposition
// have been seen" — Section 2.7).
func (p Pint[V]) Sample(rng *rand.Rand) uint64 {
	ch := rng.Uint64() & (p.m.Channels() - 1)
	return p.ValueAt(ch)
}

// ChannelsWhere iterates the channels where pbit ind is 1, calling f with
// each channel number in increasing order until f returns false. It uses
// meas(0) plus the next-chaining idiom from the paper.
func ChannelsWhere[V any](m Machine[V], ind V, f func(ch uint64) bool) {
	if m.Get(ind, 0) {
		if !f(0) {
			return
		}
	}
	for ch := m.Next(ind, 0); ch != 0; ch = m.Next(ind, ch) {
		if !f(ch) {
			return
		}
	}
}
