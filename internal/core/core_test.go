package core

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"tangled/internal/aob"
	"tangled/internal/re"
	"tangled/internal/rex"
)

// The central correctness property of PBP word arithmetic: operations on
// pints act channel-wise, so reading any channel of the result equals doing
// ordinary integer arithmetic on that channel's operand values. These
// helpers check that homomorphism for a machine.

func testAddHomomorphism[V any](t *testing.T, m Machine[V]) {
	t.Helper()
	r := rand.New(rand.NewSource(11))
	w := m.Ways()
	wa := w / 2
	wb := w - wa
	if wa == 0 || wb == 0 {
		t.Skip("machine too small")
	}
	a := H(m, wa, uint64(1)<<uint(wa)-1)
	b := H(m, wb, (uint64(1)<<uint(wb)-1)<<uint(wa))
	sum := a.Add(b)
	for i := 0; i < 200; i++ {
		ch := r.Uint64() & (m.Channels() - 1)
		va, vb := a.ValueAt(ch), b.ValueAt(ch)
		if got := sum.ValueAt(ch); got != va+vb {
			t.Fatalf("ch %d: %d + %d = %d", ch, va, vb, got)
		}
	}
}

func testMulHomomorphism[V any](t *testing.T, m Machine[V]) {
	t.Helper()
	r := rand.New(rand.NewSource(12))
	w := m.Ways()
	wa := w / 2
	wb := w - wa
	if wa == 0 || wb == 0 {
		t.Skip("machine too small")
	}
	a := H(m, wa, uint64(1)<<uint(wa)-1)
	b := H(m, wb, (uint64(1)<<uint(wb)-1)<<uint(wa))
	prod := a.Mul(b)
	for i := 0; i < 200; i++ {
		ch := r.Uint64() & (m.Channels() - 1)
		va, vb := a.ValueAt(ch), b.ValueAt(ch)
		if got := prod.ValueAt(ch); got != va*vb {
			t.Fatalf("ch %d: %d * %d = %d", ch, va, vb, got)
		}
	}
}

func TestAddHomomorphismAoB(t *testing.T) { testAddHomomorphism(t, NewAoB(8)) }
func TestMulHomomorphismAoB(t *testing.T) { testMulHomomorphism(t, NewAoB(8)) }
func TestAddHomomorphismRE(t *testing.T) {
	testAddHomomorphism(t, NewRE(re.MustSpace(12, 6)))
}
func TestMulHomomorphismRE(t *testing.T) {
	testMulHomomorphism(t, NewRE(re.MustSpace(12, 6)))
}

func TestMkEncodesConstants(t *testing.T) {
	m := NewAoB(4)
	for _, v := range []uint64{0, 1, 5, 15, 255} {
		p := Mk(m, 8, v)
		if !p.Certain(v) {
			t.Errorf("Mk(%d) not certain", v)
		}
		if p.ValueAt(0) != v || p.ValueAt(7) != v {
			t.Errorf("Mk(%d) reads %d", v, p.ValueAt(0))
		}
		vals := p.Values()
		if len(vals) != 1 || vals[0] != v {
			t.Errorf("Mk(%d) values = %v", v, vals)
		}
	}
}

func TestHSuperposesAllValues(t *testing.T) {
	m := NewAoB(6)
	p := H(m, 6, 0x3F)
	ms := p.MeasureAll()
	if len(ms) != 64 {
		t.Fatalf("6-bit H has %d distinct values, want 64", len(ms))
	}
	for i, meas := range ms {
		if meas.Value != uint64(i) || meas.Count != 1 {
			t.Fatalf("H measurement %d = %+v", i, meas)
		}
	}
}

func TestHDisjointMasksIndependent(t *testing.T) {
	// Two pints on disjoint channel sets explore the full cross product;
	// the same mask twice yields only the diagonal (the paper's "squares"
	// warning).
	m := NewAoB(8)
	b := H(m, 4, 0x0F)
	c := H(m, 4, 0xF0)
	prod := b.Mul(c)
	if !prod.Possible(6) { // 2*3 needs independent operands
		t.Error("cross product missing 6")
	}
	sq := b.Mul(b)
	vals := sq.Values()
	for _, v := range vals {
		root := uint64(0)
		for root*root < v {
			root++
		}
		if root*root != v {
			t.Fatalf("b*b produced non-square %d", v)
		}
	}
	if len(vals) != 16 {
		t.Fatalf("b*b has %d values, want 16 squares", len(vals))
	}
}

func TestHMaskValidation(t *testing.T) {
	m := NewAoB(4)
	for _, bad := range []struct {
		w    int
		mask uint64
	}{{4, 0x7}, {2, 0xF}, {1, 0x10}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("H(%d, %#x) did not panic", bad.w, bad.mask)
				}
			}()
			H(m, bad.w, bad.mask)
		}()
	}
}

// TestFig9Factor15WordLevel reproduces Figure 9 exactly: word-level prime
// factoring of 15 with the pint API; measurement prints 0, 1, 3, 5, 15.
func TestFig9Factor15WordLevel(t *testing.T) {
	run := func(t *testing.T, m8 interface{}) {
		switch m := m8.(type) {
		case AoBMachine:
			checkFig9(t, m)
		case REMachine:
			checkFig9(t, m)
		}
	}
	t.Run("AoB", func(t *testing.T) { run(t, NewAoB(8)) })
	t.Run("RE", func(t *testing.T) { run(t, NewRE(re.MustSpace(8, 4))) })
}

func checkFig9[V any](t *testing.T, m Machine[V]) {
	t.Helper()
	a := Mk(m, 4, 15)  // a = 15
	b := H(m, 4, 0x0F) // b = 0..15 over channel sets 0-3
	c := H(m, 4, 0xF0) // c = 0..15 over channel sets 4-7
	d := b.Mul(c)      // d = b*c, 8-way entangled
	e := d.Eq(a)       // e = (d == 15)
	ep := FromBits(m, []V{e})
	f := ep.Mul(b) // zero the non-factors
	got := f.Values()
	want := []uint64{0, 1, 3, 5, 15}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("measure(f) = %v, want %v", got, want)
	}
	// The paper's channel-number shortcut: each 1 channel of e encodes a
	// factor pair (ch%16, ch/16).
	var pairs [][2]uint64
	ChannelsWhere(m, e, func(ch uint64) bool {
		pairs = append(pairs, [2]uint64{ch % 16, ch / 16})
		return true
	})
	if len(pairs) != 4 {
		t.Fatalf("found %d factorizations, want 4: %v", len(pairs), pairs)
	}
	for _, p := range pairs {
		if p[0]*p[1] != 15 {
			t.Fatalf("bogus factorization %v", p)
		}
	}
}

// TestX221Factor221 runs the original (not scaled-down) problem from the
// LCPC'20 prototype on the full 16-way geometry Qat implements: factor 221
// with two 8-bit Hadamard operands.
func TestX221Factor221(t *testing.T) {
	m := NewAoB(16)
	b := H(m, 8, 0x00FF)
	c := H(m, 8, 0xFF00)
	d := b.Mul(c)
	e := d.Eq(Mk(m, 16, 221))
	var factors []uint64
	ChannelsWhere(m, e, func(ch uint64) bool {
		factors = append(factors, ch%256)
		return true
	})
	// 221 = 13*17: factor pairs (1,221 — no, 221 needs 8 bits... 221<256 ok),
	// (13,17), (17,13), (221,1).
	want := map[uint64]bool{1: true, 13: true, 17: true, 221: true}
	if len(factors) != 4 {
		t.Fatalf("found %d factorizations: %v", len(factors), factors)
	}
	for _, f := range factors {
		if !want[f] {
			t.Fatalf("unexpected factor %d", f)
		}
	}
}

// TestX221Factor221RE repeats the experiment on the compressed backend with
// chunk size well below the problem size, proving the RE path can stand in
// for hardware AoB.
func TestX221Factor221RE(t *testing.T) {
	m := NewRE(re.MustSpace(16, 10))
	b := H(m, 8, 0x00FF)
	c := H(m, 8, 0xFF00)
	e := b.Mul(c).Eq(Mk(m, 16, 221))
	if !Any(m, e) {
		t.Fatal("no factorization channels found")
	}
	var factors []uint64
	ChannelsWhere(m, e, func(ch uint64) bool {
		factors = append(factors, ch%256)
		return true
	})
	if len(factors) != 4 {
		t.Fatalf("found %d factorizations: %v", len(factors), factors)
	}
}

func TestEqNeAcrossWidths(t *testing.T) {
	m := NewAoB(4)
	a := Mk(m, 4, 9)
	b := Mk(m, 8, 9)
	if !All(m, a.Eq(b)) {
		t.Error("9 (4-bit) != 9 (8-bit)")
	}
	c := Mk(m, 8, 9+16)
	if Any(m, a.Eq(c)) {
		t.Error("9 == 25")
	}
	if !All(m, a.Ne(c)) {
		t.Error("Ne failed")
	}
}

func TestComparisons(t *testing.T) {
	m := NewAoB(6)
	x := H(m, 6, 0x3F)
	for _, k := range []uint64{0, 1, 31, 32, 63} {
		kk := Mk(m, 6, k)
		lt, le, gt, ge := x.Lt(kk), x.Le(kk), x.Gt(kk), x.Ge(kk)
		for ch := uint64(0); ch < 64; ch++ {
			v := x.ValueAt(ch)
			if m.Get(lt, ch) != (v < k) {
				t.Fatalf("lt(%d,%d) wrong", v, k)
			}
			if m.Get(le, ch) != (v <= k) {
				t.Fatalf("le(%d,%d) wrong", v, k)
			}
			if m.Get(gt, ch) != (v > k) {
				t.Fatalf("gt(%d,%d) wrong", v, k)
			}
			if m.Get(ge, ch) != (v >= k) {
				t.Fatalf("ge(%d,%d) wrong", v, k)
			}
		}
	}
}

func TestConstantArithmeticProperty(t *testing.T) {
	m := NewAoB(4)
	f := func(a, b uint8) bool {
		pa, pb := Mk(m, 8, uint64(a)), Mk(m, 8, uint64(b))
		sum := pa.Add(pb)
		if !sum.Certain(uint64(a) + uint64(b)) {
			return false
		}
		prod := pa.Mul(pb)
		return prod.Certain(uint64(a) * uint64(b))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestLogicOpsOnPints(t *testing.T) {
	m := NewAoB(4)
	f := func(a, b uint8) bool {
		pa, pb := Mk(m, 8, uint64(a)), Mk(m, 8, uint64(b))
		return pa.And(pb).Certain(uint64(a&b)) &&
			pa.Or(pb).Certain(uint64(a|b)) &&
			pa.Xor(pb).Certain(uint64(a^b)) &&
			pa.Not().Certain(uint64(^a))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestMuxSelectsChannelwise(t *testing.T) {
	m := NewAoB(4)
	a := Mk(m, 4, 3)
	b := Mk(m, 4, 12)
	sel := m.Had(2) // half the channels
	mux := a.Mux(b, sel)
	for ch := uint64(0); ch < 16; ch++ {
		want := uint64(3)
		if m.Get(sel, ch) {
			want = 12
		}
		if mux.ValueAt(ch) != want {
			t.Fatalf("mux ch %d = %d want %d", ch, mux.ValueAt(ch), want)
		}
	}
}

func TestShiftLeft(t *testing.T) {
	m := NewAoB(4)
	p := Mk(m, 4, 5).ShiftLeft(3)
	if p.Width() != 7 || !p.Certain(40) {
		t.Fatalf("5<<3: width=%d", p.Width())
	}
}

func TestExtendTruncate(t *testing.T) {
	m := NewAoB(4)
	p := Mk(m, 4, 9)
	if !p.Extend(8).Certain(9) {
		t.Error("extend changed value")
	}
	if !p.Truncate(3).Certain(1) { // 9 = 0b1001 -> low 3 bits = 001
		t.Error("truncate wrong")
	}
	func() {
		defer func() { recover() }()
		p.Extend(2)
		t.Error("Extend shrink did not panic")
	}()
}

func TestAddModWraps(t *testing.T) {
	m := NewAoB(4)
	p := Mk(m, 4, 12).AddMod(Mk(m, 4, 7))
	if !p.Certain(3) { // 19 mod 16
		t.Errorf("12+7 mod 16 = %v", p.Values())
	}
	if p.Width() != 4 {
		t.Errorf("width %d", p.Width())
	}
}

func TestProbMatchesMeasure(t *testing.T) {
	m := NewAoB(8)
	b := H(m, 4, 0x0F)
	c := H(m, 4, 0xF0)
	d := b.Mul(c)
	counts := map[uint64]uint64{}
	for _, meas := range d.MeasureAll() {
		counts[meas.Value] = meas.Count
	}
	for _, v := range []uint64{0, 1, 12, 15, 100, 225, 226} {
		if got := d.Prob(v); got != counts[v] {
			t.Errorf("Prob(%d) = %d, want %d", v, got, counts[v])
		}
	}
	// Paper example: the product superposition has 0 with high probability
	// (any zero operand) — 31/256.
	if d.Prob(0) != 31 {
		t.Errorf("Prob(0) = %d, want 31", d.Prob(0))
	}
}

func TestPossibleCertain(t *testing.T) {
	m := NewAoB(4)
	x := H(m, 4, 0xF)
	if !x.Possible(7) || x.Certain(7) {
		t.Error("H: every value possible, none certain")
	}
	k := Mk(m, 4, 7)
	if !k.Possible(7) || !k.Certain(7) {
		t.Error("constant: value both possible and certain")
	}
	if k.Possible(8) {
		t.Error("constant cannot be another value")
	}
}

func TestCrossBackendAgreement(t *testing.T) {
	// The same program on AoB and RE machines of identical geometry must
	// produce identical measurements.
	ma := NewAoB(10)
	mr := NewRE(re.MustSpace(10, 4))
	resA := program(ma)
	resR := program(mr)
	if !reflect.DeepEqual(resA, resR) {
		t.Fatalf("backends disagree:\naob: %v\nre:  %v", resA, resR)
	}
}

func program[V any](m Machine[V]) []Measurement {
	x := H(m, 5, 0x1F)
	y := H(m, 5, 0x3E0)
	s := x.Add(y)
	masked := s.And(Mk(m, 6, 0x15))
	return masked.MeasureAll()
}

func TestChannelsWhereEarlyStop(t *testing.T) {
	m := NewAoB(6)
	ind := m.One()
	var seen int
	ChannelsWhere(m, ind, func(ch uint64) bool {
		seen++
		return seen < 5
	})
	if seen != 5 {
		t.Fatalf("early stop visited %d channels", seen)
	}
}

func TestAnyAllReductions(t *testing.T) {
	m := NewAoB(6)
	if Any(m, m.Zero()) || !Any(m, m.One()) || !Any(m, m.Had(3)) {
		t.Error("Any wrong")
	}
	if All(m, m.Zero()) || !All(m, m.One()) || All(m, m.Had(3)) {
		t.Error("All wrong")
	}
	// A 1 only in channel 0 must be visible to Any (next alone misses it).
	v := aob.New(6)
	v.Set(0, true)
	if !Any[*aob.Vector](NewAoB(6), v) {
		t.Error("Any missed channel 0")
	}
}

func TestWidthValidation(t *testing.T) {
	m := NewAoB(4)
	defer func() {
		if recover() == nil {
			t.Error("width 65 did not panic")
		}
	}()
	Mk(m, 65, 0)
}

func BenchmarkFig9WordLevel(b *testing.B) {
	m := NewAoB(8)
	for i := 0; i < b.N; i++ {
		a := Mk(m, 4, 15)
		x := H(m, 4, 0x0F)
		y := H(m, 4, 0xF0)
		e := x.Mul(y).Eq(a)
		_ = m.Next(e, 0)
	}
}

func BenchmarkX221Factor221(b *testing.B) {
	m := NewAoB(16)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		x := H(m, 8, 0x00FF)
		y := H(m, 8, 0xFF00)
		e := x.Mul(y).Eq(Mk(m, 16, 221))
		_ = m.Next(e, 0)
	}
}

func BenchmarkX221Factor221RE(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		m := NewRE(re.MustSpace(16, 10))
		x := H(m, 8, 0x00FF)
		y := H(m, 8, 0xFF00)
		e := x.Mul(y).Eq(Mk(m, 16, 221))
		_ = m.Next(e, 0)
	}
}

func BenchmarkMulWidthSweepAoB(b *testing.B) {
	for _, w := range []int{2, 4, 8} {
		b.Run(string(rune('0'+w)), func(b *testing.B) {
			m := NewAoB(16)
			x := H(m, w, uint64(1)<<uint(w)-1)
			y := H(m, w, (uint64(1)<<uint(w)-1)<<uint(w))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				_ = x.Mul(y)
			}
		})
	}
}

func TestSubNegHomomorphism(t *testing.T) {
	m := NewAoB(8)
	a := H(m, 4, 0x0F)
	b := H(m, 4, 0xF0)
	diff := a.Sub(b)
	neg := b.Neg()
	for ch := uint64(0); ch < 256; ch++ {
		va, vb := a.ValueAt(ch), b.ValueAt(ch)
		if got := diff.ValueAt(ch); got != (va-vb)&15 {
			t.Fatalf("ch %d: %d-%d = %d", ch, va, vb, got)
		}
		if got := neg.ValueAt(ch); got != (-vb)&15 {
			t.Fatalf("ch %d: -%d = %d", ch, vb, got)
		}
	}
}

func TestIncDec(t *testing.T) {
	m := NewAoB(4)
	x := H(m, 4, 0xF)
	up, down := x.Inc(), x.Dec()
	for ch := uint64(0); ch < 16; ch++ {
		v := x.ValueAt(ch)
		if up.ValueAt(ch) != (v+1)&15 {
			t.Fatalf("inc(%d)", v)
		}
		if down.ValueAt(ch) != (v-1)&15 {
			t.Fatalf("dec(%d)", v)
		}
	}
}

func TestIsZero(t *testing.T) {
	m := NewAoB(4)
	x := H(m, 4, 0xF)
	z := x.Sub(x).IsZero()
	if !All(m, z) {
		t.Error("x-x must be zero everywhere")
	}
	nz := x.IsZero()
	if m.Pop(nz) != 1 { // only channel 0 encodes 0
		t.Errorf("IsZero pop = %d", m.Pop(nz))
	}
}

func TestSubConstProperty(t *testing.T) {
	m := NewAoB(4)
	f := func(a, b uint8) bool {
		pa, pb := Mk(m, 8, uint64(a)), Mk(m, 8, uint64(b))
		return pa.Sub(pb).Certain(uint64(a-b)) && pa.Neg().Certain(uint64(-a))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestAddHomomorphismRex(t *testing.T) {
	testAddHomomorphism(t, NewRex(rex.MustSpace(12, 6)))
}

func TestMulHomomorphismRex(t *testing.T) {
	testMulHomomorphism(t, NewRex(rex.MustSpace(12, 6)))
}

func TestFig9Rex(t *testing.T) {
	checkFig9(t, NewRex(rex.MustSpace(8, 4)))
}

func TestX221Factor221Rex(t *testing.T) {
	m := NewRex(rex.MustSpace(16, 10))
	e := H(m, 8, 0x00FF).Mul(H(m, 8, 0xFF00)).Eq(Mk(m, 16, 221))
	var factors []uint64
	ChannelsWhere(m, e, func(ch uint64) bool {
		factors = append(factors, ch%256)
		return true
	})
	if len(factors) != 4 {
		t.Fatalf("found %d factorizations: %v", len(factors), factors)
	}
}

// TestFactorBeyondHardwareRex factors 899 = 29*31 with 10x10-bit operands:
// 20-way entanglement, beyond what a single 16-way Qat register holds, on
// the tree-compressed backend.
func TestFactorBeyondHardwareRex(t *testing.T) {
	m := NewRex(rex.MustSpace(20, 8))
	b := H(m, 10, 0x003FF)
	c := H(m, 10, 0xFFC00)
	e := b.Mul(c).Eq(Mk(m, 20, 899))
	var factors []uint64
	ChannelsWhere(m, e, func(ch uint64) bool {
		factors = append(factors, ch%1024)
		return true
	})
	want := map[uint64]bool{1: true, 29: true, 31: true, 899: true}
	if len(factors) != 4 {
		t.Fatalf("factorizations: %v", factors)
	}
	for _, f := range factors {
		if !want[f] {
			t.Fatalf("unexpected factor %d", f)
		}
	}
}

func TestCrossBackendAgreementRex(t *testing.T) {
	resA := program(NewAoB(10))
	resX := program(NewRex(rex.MustSpace(10, 4)))
	if !reflect.DeepEqual(resA, resX) {
		t.Fatalf("backends disagree:\naob: %v\nrex: %v", resA, resX)
	}
}

// TestFourQueensSuperposition solves 4-queens entirely in superposition:
// one 2-bit column pint per row over its own channel sets, pairwise
// constraints built from word-level gates, and the solution set read out
// non-destructively. The two classic solutions appear as exactly two 1
// channels.
func TestFourQueensSuperposition(t *testing.T) {
	m := NewAoB(8)
	cols := make([]Pint[*aob.Vector], 4)
	for row := range cols {
		cols[row] = H(m, 2, 0x3<<(2*uint(row)))
	}
	ok := m.One()
	for i := 0; i < 4; i++ {
		for j := i + 1; j < 4; j++ {
			d := uint64(j - i)
			// Distinct columns.
			ok = m.And(ok, cols[i].Ne(cols[j]))
			// Distinct diagonals: col_i + d != col_j and col_j + d != col_i
			// (3-bit arithmetic avoids wraparound).
			ci := cols[i].Extend(3)
			cj := cols[j].Extend(3)
			dd := Mk(m, 3, d)
			ok = m.And(ok, m.Not(ci.AddMod(dd).Eq(cj)))
			ok = m.And(ok, m.Not(cj.AddMod(dd).Eq(ci)))
		}
	}
	if got := m.Pop(ok); got != 2 {
		t.Fatalf("4-queens has %d solutions, want 2", got)
	}
	var solutions [][4]uint64
	ChannelsWhere(m, ok, func(ch uint64) bool {
		var s [4]uint64
		for row := 0; row < 4; row++ {
			s[row] = ch >> (2 * uint(row)) & 3
		}
		solutions = append(solutions, s)
		return true
	})
	want := map[[4]uint64]bool{{1, 3, 0, 2}: true, {2, 0, 3, 1}: true}
	for _, s := range solutions {
		if !want[s] {
			t.Errorf("bogus solution %v", s)
		}
	}
}

// TestFiveQueensRex scales N-queens to 5x5 (15 pbits) on the rex backend.
func TestFiveQueensRex(t *testing.T) {
	m := NewRex(rex.MustSpace(15, 8))
	cols := make([]Pint[*rex.Pattern], 5)
	for row := range cols {
		cols[row] = H(m, 3, 0x7<<(3*uint(row)))
	}
	ok := m.One()
	five := Mk(m, 3, 5)
	for row := range cols {
		// Column indices 5-7 are invalid on a 5-wide board.
		ok = m.And(ok, cols[row].Lt(five))
	}
	for i := 0; i < 5; i++ {
		for j := i + 1; j < 5; j++ {
			d := uint64(j - i)
			ok = m.And(ok, cols[i].Ne(cols[j]))
			ci := cols[i].Extend(4)
			cj := cols[j].Extend(4)
			dd := Mk(m, 4, d)
			ok = m.And(ok, m.Not(ci.AddMod(dd).Eq(cj)))
			ok = m.And(ok, m.Not(cj.AddMod(dd).Eq(ci)))
		}
	}
	if got := m.Pop(ok); got != 10 {
		t.Fatalf("5-queens has %d solutions, want 10", got)
	}
}

// TestSampleDistribution: random-channel sampling reproduces the
// superposition's probabilities, and never disturbs the state — the
// quantum-measurement analog, minus the collapse.
func TestSampleDistribution(t *testing.T) {
	m := NewAoB(8)
	b := H(m, 4, 0x0F)
	c := H(m, 4, 0xF0)
	d := b.Mul(c)
	rng := rand.New(rand.NewSource(42))
	counts := map[uint64]int{}
	const n = 20000
	for i := 0; i < n; i++ {
		counts[d.Sample(rng)]++
	}
	// P(0) = 31/256: check within 3 sigma.
	p0 := 31.0 / 256
	mean := p0 * n
	sigma := mathSqrt(n * p0 * (1 - p0))
	got := float64(counts[0])
	if got < mean-4*sigma || got > mean+4*sigma {
		t.Errorf("sampled 0 %v times, want about %v", got, mean)
	}
	// Superposition intact after sampling.
	if d.Prob(0) != 31 {
		t.Error("sampling disturbed the superposition")
	}
}

func mathSqrt(x float64) float64 {
	z := x
	for i := 0; i < 40; i++ {
		z = (z + x/z) / 2
	}
	return z
}

func TestUnrepresentableValues(t *testing.T) {
	m := NewAoB(4)
	x := H(m, 4, 0xF)
	if x.Possible(16) || x.Possible(1<<40) {
		t.Error("out-of-width value reported possible")
	}
	if x.Prob(16) != 0 {
		t.Error("out-of-width probability nonzero")
	}
	if Mk(m, 4, 0).Certain(16) {
		t.Error("out-of-width certainty")
	}
}

// TestVariableOrderingMatters documents the BDD-like sensitivity of the
// tree-compressed backend to entanglement channel-set assignment: the
// equality indicator of two operands is linear-sized when their channel
// sets interleave and exponential when they are in separate blocks —
// exactly Bryant's classic variable-ordering result, surfacing in the PBP
// setting as "which channel sets you give each pint".
func TestVariableOrderingMatters(t *testing.T) {
	const w = 11
	mi := NewRex(rex.MustSpace(22, 4))
	xi := H(mi, w, 0x155555) // even sets
	yi := H(mi, w, 0x2AAAAA) // odd sets
	inter := xi.Eq(yi)

	mb := NewRex(rex.MustSpace(22, 4))
	xb := H(mb, w, 0x0007FF) // low block
	yb := H(mb, w, 0x3FF800) // high block
	block := xb.Eq(yb)

	if inter.Pop() != block.Pop() {
		t.Fatal("semantic disagreement")
	}
	ni, nb := inter.NumNodes(), block.NumNodes()
	if ni*8 > nb {
		t.Errorf("interleaved %d nodes vs blocked %d: expected a wide gap", ni, nb)
	}
	t.Logf("equality indicator: interleaved %d nodes, blocked %d nodes", ni, nb)
}
