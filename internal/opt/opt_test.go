package opt

// Unit and golden tests for the optimizing recompiler: each pass proved on a
// handcrafted program (semantics checked on the reference machine before and
// after), every refusal reason pinned to a program that triggers it, and the
// global invariants — identity on refusal, idempotence, no growth — asserted
// directly. The statistical proof over the shared corpus lives in
// diff_test.go; the adversarial one in metamorphic_test.go and fuzz_test.go.

import (
	"strings"
	"testing"

	"tangled/internal/asm"
	"tangled/internal/cpu"
	"tangled/internal/isa"
	"tangled/internal/lint"
)

const testBudget = 2_000_000

// runRef executes p on the reference machine and returns the observable
// outcome: the final Tangled register file and the sys output stream.
func runRef(t *testing.T, p *asm.Program, ways int) ([16]uint16, string) {
	t.Helper()
	m := cpu.New(ways)
	var out strings.Builder
	m.Out = &out
	if err := m.Load(p); err != nil {
		t.Fatalf("load: %v", err)
	}
	if err := m.Run(testBudget); err != nil {
		t.Fatalf("run: %v", err)
	}
	return m.Regs, out.String()
}

// mustAssemble assembles src or fails the test.
func mustAssemble(t *testing.T, src string) *asm.Program {
	t.Helper()
	p, err := asm.Assemble(src)
	if err != nil {
		t.Fatalf("assemble: %v", err)
	}
	return p
}

// optApplied optimizes src and requires the program to be accepted.
func optApplied(t *testing.T, src string, opts Options) (*asm.Program, *asm.Program, *Report) {
	t.Helper()
	p := mustAssemble(t, src)
	q, rep := Optimize(p, opts)
	if !rep.Applied {
		t.Fatalf("refused (%s); want applied\nsource:\n%s", rep.Reason, src)
	}
	return p, q, rep
}

// sameBehavior runs both programs and compares the observable outcome.
func sameBehavior(t *testing.T, p, q *asm.Program, ways int) {
	t.Helper()
	pr, po := runRef(t, p, ways)
	qr, qo := runRef(t, q, ways)
	if pr != qr {
		t.Fatalf("register files diverge:\n  original:  %v\n  optimized: %v", pr, qr)
	}
	if po != qo {
		t.Fatalf("output diverges:\n  original:  %q\n  optimized: %q", po, qo)
	}
}

// passStat returns the named pass's stat from a report.
func passStat(t *testing.T, rep *Report, name string) PassStat {
	t.Helper()
	for _, ps := range rep.Passes {
		if ps.Pass == name {
			return ps
		}
	}
	t.Fatalf("pass %q missing from report", name)
	return PassStat{}
}

const haltEpilogue = "\tlex\t$0, 0\n\tsys\n"

func TestDeadStoreElimination(t *testing.T) {
	// Every register is observable at halt (and sys exposes the whole file),
	// so a dead store must be overwritten before any sys to be removable.
	src := `
	lex	$1, 7
	lex	$2, 9	; dead: overwritten before anything reads it
	lex	$2, 4
	lex	$0, 1
	sys		; print $1
` + haltEpilogue
	p, q, rep := optApplied(t, src, Options{})
	sameBehavior(t, p, q, 16)
	if len(q.Words) >= len(p.Words) {
		t.Fatalf("no shrink: %d -> %d words", len(p.Words), len(q.Words))
	}
	if ps := passStat(t, rep, PassDeadStore); ps.Removed == 0 {
		t.Fatalf("deadstore removed nothing: %+v", rep.Passes)
	}
}

func TestConstFoldLexChain(t *testing.T) {
	src := `
	lex	$1, 2
	lex	$2, 3
	add	$1, $2	; $1 = 5, foldable
	xor	$3, $3	; $3 = 0 without a constant source
	lex	$0, 1
	sys		; print $1
` + haltEpilogue
	p, q, rep := optApplied(t, src, Options{})
	sameBehavior(t, p, q, 16)
	if ps := passStat(t, rep, PassConstFold); ps.Removed+ps.Rewritten == 0 {
		t.Fatalf("constfold did nothing: %+v", rep.Passes)
	}
	if len(q.Words) >= len(p.Words) {
		t.Fatalf("no shrink: %d -> %d words", len(p.Words), len(q.Words))
	}
}

func TestConstFoldLhiCollapse(t *testing.T) {
	// lhi over a known low byte with a value that fits lex collapses.
	src := `
	lex	$1, 3
	lhi	$1, 0	; (3 & 0xFF) | 0<<8 == 3: a provable no-op
	lex	$0, 1
	sys
` + haltEpilogue
	p, q, rep := optApplied(t, src, Options{})
	sameBehavior(t, p, q, 16)
	if ps := passStat(t, rep, PassConstFold); ps.Removed == 0 {
		t.Fatalf("lhi no-op not removed: %+v", rep.Passes)
	}
}

func TestPeepholeDoubleNot(t *testing.T) {
	src := `
	one	@1
	not	@1
	not	@1	; cancels with the previous
	lex	$1, 0
	meas	$1, @1
	lex	$0, 1
	sys		; print the (deterministic) measurement
` + haltEpilogue
	p, q, rep := optApplied(t, src, Options{})
	sameBehavior(t, p, q, 16)
	if ps := passStat(t, rep, PassPeephole); ps.Removed < 2 {
		t.Fatalf("not-not pair survived: %+v", rep.Passes)
	}
}

func TestPeepholeCPUNotBarrier(t *testing.T) {
	// A sys between the pair may halt (or fault) with the intermediate
	// value visible: the pair must NOT cancel across it. $3 comes from a
	// measurement so the constant folder cannot rewrite the nots either.
	src := `
	had	@0, 2
	meas	$3, @0
	not	$3
	lex	$0, 1
	sys		; print $1 -- but also a potential halt/fault point
	not	$3
	lex	$0, 1
	sys
` + haltEpilogue
	p, q, _ := optApplied(t, src, Options{})
	sameBehavior(t, p, q, 16)
	// Both nots must survive every round.
	insts := decodeOps(t, q)
	nots := 0
	for _, op := range insts {
		if op == isa.OpNot {
			nots++
		}
	}
	if nots != 2 {
		t.Fatalf("not count = %d, want 2 (sys is a barrier)", nots)
	}
}

func TestEnergyRedundantInit(t *testing.T) {
	src := `
	zero	@2	; loader already zeroed the file: removable
	one	@3
	one	@3	; re-init of the current state: removable
	zero	@3	; inverse of the current state: reversibilizes to not
	lex	$1, 0
	meas	$1, @3
	lex	$0, 1
	sys
` + haltEpilogue
	p, q, rep := optApplied(t, src, Options{})
	sameBehavior(t, p, q, 16)
	ps := passStat(t, rep, PassEnergy)
	if ps.Removed == 0 && ps.Rewritten == 0 {
		t.Fatalf("energy pass did nothing: %+v", rep.Passes)
	}
	if rep.ErasedAfter >= rep.ErasedBefore {
		t.Fatalf("erased bits did not drop: %d -> %d", rep.ErasedBefore, rep.ErasedAfter)
	}
}

func TestEnergyCnotZeroSource(t *testing.T) {
	src := `
	one	@1
	cnot	@1, @2	; @2 still zero: a ^= 0 is a no-op
	lex	$1, 0
	meas	$1, @1
	lex	$0, 1
	sys
` + haltEpilogue
	p, q, rep := optApplied(t, src, Options{})
	sameBehavior(t, p, q, 16)
	if ps := passStat(t, rep, PassEnergy); ps.Removed == 0 {
		t.Fatalf("cnot with zero source survived: %+v", rep.Passes)
	}
}

func TestUnreachableRemoval(t *testing.T) {
	src := haltEpilogue + `
	lex	$5, 9	; past a certain halt: unreachable
	add	$5, $5
`
	p, q, rep := optApplied(t, src, Options{})
	sameBehavior(t, p, q, 16)
	if ps := passStat(t, rep, PassUnreachable); ps.Removed < 2 {
		t.Fatalf("unreachable tail survived: %+v", rep.Passes)
	}
	// The constant folder additionally drops `lex $0, 0` (the loader zeroes
	// the register file), leaving just the sys.
	if rep.InstsAfter > 2 {
		t.Fatalf("insts after = %d, want at most the halt epilogue", rep.InstsAfter)
	}
}

func TestBranchRelayout(t *testing.T) {
	// Removals before and between branch and target: offsets must re-resolve.
	src := `
	lex	$9, 1	; dead: overwritten before any sys
	lex	$9, 2
	lex	$1, 3
	lex	$2, -1
loop:	lex	$8, 7	; dead: overwritten before the loop's sys
	lex	$8, 1
	lex	$0, 1
	sys
	add	$1, $2
	brt	$1, loop
` + haltEpilogue
	p, q, _ := optApplied(t, src, Options{})
	sameBehavior(t, p, q, 16)
	if len(q.Words) >= len(p.Words) {
		t.Fatalf("no shrink: %d -> %d words", len(p.Words), len(q.Words))
	}
}

// decodeOps decodes a program's reachable words into opcodes.
func decodeOps(t *testing.T, p *asm.Program) []isa.Op {
	t.Helper()
	var ops []isa.Op
	for i := 0; i < len(p.Words); {
		var w1 uint16
		if i+1 < len(p.Words) {
			w1 = p.Words[i+1]
		}
		in, n, err := isa.Primary.Decode(p.Words[i], w1)
		if err != nil {
			t.Fatalf("decode at %d: %v", i, err)
		}
		ops = append(ops, in.Op)
		i += n
	}
	return ops
}

func TestRefusalReasons(t *testing.T) {
	cases := []struct {
		name, src string
		opts      Options
		want      string
	}{
		{"lint-errors", "\tlex\t$1, 5\n", Options{}, ReasonLintErrors}, // falls off the end
		{"memory-unproven", `
	had	@0, 2
	meas	$1, @0
	load	$2, $1	; measurement-derived address: no lower bound
` + haltEpilogue, Options{}, ReasonMemory},
		{"had-range", "\thad\t@0, 5\n" + haltEpilogue, Options{Ways: 4}, ReasonHadRange},
		{"data-words", haltEpilogue + "\t.word\t42\n", Options{}, ReasonData},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			p := mustAssemble(t, tc.src)
			q, rep := Optimize(p, tc.opts)
			if rep.Applied {
				t.Fatalf("applied; want refusal %s", tc.want)
			}
			if rep.Reason != tc.want {
				t.Fatalf("reason = %q, want %q", rep.Reason, tc.want)
			}
			if q != p {
				t.Fatalf("refusal did not return the input program")
			}
			if rep.WordsBefore != rep.WordsAfter || rep.SwitchedBefore != rep.SwitchedAfter {
				t.Fatalf("refusal report not an identity: %+v", rep)
			}
		})
	}
}

func TestRefusalJumpr(t *testing.T) {
	// The jump pseudo assembles to a jumpr the linter resolves precisely;
	// the optimizer still refuses it (relayout would have to relocate the
	// register constant), reporting the dedicated reason.
	src := `
	jump	skip
	lex	$4, 1	; skipped
skip:
` + haltEpilogue
	p := mustAssemble(t, src)
	q, rep := Optimize(p, Options{})
	if rep.Applied {
		t.Fatalf("applied; want a jumpr refusal")
	}
	if rep.Reason != ReasonJumpr && rep.Reason != ReasonImprecise {
		t.Fatalf("reason = %q, want %q or %q", rep.Reason, ReasonJumpr, ReasonImprecise)
	}
	if q != p {
		t.Fatalf("refusal did not return the input program")
	}
	// The golden property for satellite coverage: a refused program's words
	// are byte-identical to the input.
	for i := range p.Words {
		if q.Words[i] != p.Words[i] {
			t.Fatalf("word %d changed on a refused program", i)
		}
	}
}

func TestIdempotence(t *testing.T) {
	srcs := []string{
		`
	lex	$1, 2
	lex	$2, 3
	add	$1, $2
	lex	$9, 1
	one	@1
	not	@1
	not	@1
	lex	$3, 0
	meas	$3, @1
	lex	$0, 1
	sys
` + haltEpilogue,
		haltEpilogue,
	}
	for i, src := range srcs {
		p := mustAssemble(t, src)
		q1, rep1 := Optimize(p, Options{})
		if !rep1.Applied {
			t.Fatalf("case %d refused: %s", i, rep1.Reason)
		}
		q2, rep2 := Optimize(q1, Options{})
		if !rep2.Applied {
			t.Fatalf("case %d: second pass refused: %s", i, rep2.Reason)
		}
		if len(q1.Words) != len(q2.Words) {
			t.Fatalf("case %d: not idempotent: %d -> %d words", i, len(q1.Words), len(q2.Words))
		}
		for j := range q1.Words {
			if q1.Words[j] != q2.Words[j] {
				t.Fatalf("case %d: word %d differs on re-optimization", i, j)
			}
		}
		if rep2.Rounds != 0 {
			t.Fatalf("case %d: re-optimization took %d rounds, want 0", i, rep2.Rounds)
		}
	}
}

func TestOptimizedStaysLintClean(t *testing.T) {
	src := `
	lex	$1, 2
	lex	$2, 3
	add	$1, $2
	lex	$0, 1
	sys
` + haltEpilogue
	_, q, _ := optApplied(t, src, Options{})
	rep := lint.Analyze(q, lint.Options{})
	if rep.Errors > 0 {
		t.Fatalf("optimized program has lint errors: %+v", rep.Diags)
	}
}

func TestReportEnergyAccounting(t *testing.T) {
	src := `
	zero	@1
	zero	@1
	one	@2
	one	@2
	lex	$1, 0
	meas	$1, @2
	lex	$0, 1
	sys
` + haltEpilogue
	_, _, rep := optApplied(t, src, Options{Ways: 6})
	if rep.Ways != 6 {
		t.Fatalf("ways = %d, want 6", rep.Ways)
	}
	if rep.ErasedAfter >= rep.ErasedBefore {
		t.Fatalf("erased bound did not shrink: %d -> %d", rep.ErasedBefore, rep.ErasedAfter)
	}
	if rep.InstsAfter >= rep.InstsBefore {
		t.Fatalf("instruction count did not shrink: %d -> %d", rep.InstsBefore, rep.InstsAfter)
	}
}

func TestOptimizeSourceAssemblyError(t *testing.T) {
	if _, _, err := OptimizeSource("\tbogus\t$1\n", Options{}); err == nil {
		t.Fatal("assembly error not surfaced")
	}
}

func TestDisassembleRoundTrip(t *testing.T) {
	_, q, _ := optApplied(t, "\tlex\t$1, 2\n\tlex\t$0, 1\n\tsys\n"+haltEpilogue, Options{})
	lines := Disassemble(q, Options{})
	if len(lines) == 0 {
		t.Fatal("empty disassembly")
	}
	rt := mustAssemble(t, strings.Join(lines, "\n")+"\n")
	if len(rt.Words) != len(q.Words) {
		t.Fatalf("round-trip: %d words, want %d", len(rt.Words), len(q.Words))
	}
	for i := range rt.Words {
		if rt.Words[i] != q.Words[i] {
			t.Fatalf("round-trip word %d: %#04x != %#04x", i, rt.Words[i], q.Words[i])
		}
	}
}
