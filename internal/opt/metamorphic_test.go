package opt

// The metamorphic suite: seeding corpus programs with provably-removable
// junk — adjacent Qat not-not pairs, self-copies, and dead-then-restored
// register stores — must never change what the optimizer's output computes,
// and the output must never be larger than the mutated input. For programs
// the optimizer accepts, the junk classes below are all within the passes'
// power, so the mutant must come back strictly smaller than it was mutated
// to. This attacks the optimizer from the opposite side of diff_test.go:
// instead of checking that real programs survive optimization, it checks
// that planted redundancy is actually found without collateral damage.

import (
	"fmt"
	"strings"
	"testing"

	"tangled/internal/asm"
	"tangled/internal/farm/farmtest"
)

// mutate inserts semantically inert lines into src at positions derived from
// i: a cancelling Qat not-not pair, a self-copy, and a write to the unused
// $15 immediately restored to its loader value. Every insertion is a no-op
// on its own (even when a label makes it part of a loop body), so the
// mutant's observable behavior equals the original's by construction.
func mutate(src string, i int) string {
	lines := strings.Split(strings.TrimRight(src, "\n"), "\n")
	q := i % 12
	r := 1 + i%9
	junk := [][]string{
		{fmt.Sprintf("\tnot\t@%d", q), fmt.Sprintf("\tnot\t@%d", q)},
		{fmt.Sprintf("\tcopy\t$%d,$%d", r, r)},
		{"\tlex\t$15,42", "\tlex\t$15,0"},
	}
	// Spread the insertion points across the program, keeping each group
	// adjacent (the pairs must cancel against each other, not across code).
	var out []string
	for li, line := range lines {
		for gi, g := range junk {
			if li == (i+gi*7)%len(lines) {
				out = append(out, g...)
			}
		}
		out = append(out, line)
	}
	return strings.Join(out, "\n") + "\n"
}

func TestMetamorphicCorpus(t *testing.T) {
	strictShrinks := 0
	for i := 0; i < farmtest.Programs; i++ {
		src := farmtest.Generate(farmtest.Seed(i))
		orig, err := asm.Assemble(src)
		if err != nil {
			t.Fatalf("program %d: %v", i, err)
		}
		_, origRep := Optimize(orig, Options{Ways: farmtest.Ways})

		msrc := mutate(src, i)
		mut, err := asm.Assemble(msrc)
		if err != nil {
			t.Fatalf("program %d: mutant does not assemble: %v\n%s", i, err, msrc)
		}
		optMut, rep := Optimize(mut, Options{Ways: farmtest.Ways})
		if len(optMut.Words) > len(mut.Words) {
			t.Fatalf("program %d: optimized mutant grew: %d -> %d words",
				i, len(mut.Words), len(optMut.Words))
		}

		if !origRep.Applied {
			// A refused original stays refused when mutated (the offending
			// load/jumpr is still there), and — the refusal's whole point —
			// insertions are NOT no-ops for such programs: their unproven
			// loads read the program image, which the insertions reshaped.
			// No semantic comparison against the original is meaningful;
			// the contract is the verbatim identity.
			if rep.Applied {
				t.Fatalf("program %d: refused original (%s) but mutant accepted\n%s",
					i, origRep.Reason, msrc)
			}
			if optMut != mut {
				t.Fatalf("program %d: refused mutant not returned verbatim", i)
			}
			continue
		}

		// Accepted originals are load-free up to proven-high stores, so the
		// planted junk really is inert — and entirely within the passes'
		// power, so the mutant must come back strictly smaller...
		if !rep.Applied {
			t.Fatalf("program %d: accepted original but mutant refused (%s)\n%s",
				i, rep.Reason, msrc)
		}
		if len(optMut.Words) >= len(mut.Words) {
			t.Fatalf("program %d: accepted mutant kept its junk: %d -> %d words\n%s",
				i, len(mut.Words), len(optMut.Words), msrc)
		}
		strictShrinks++

		// ...and optimize(mutant) must compute exactly what the unmutated
		// original computes.
		or, oo := runRef(t, orig, farmtest.Ways)
		mr, mo := runRef(t, optMut, farmtest.Ways)
		if or != mr {
			t.Fatalf("program %d: optimized mutant diverges from original\n  original: %v\n  mutant:   %v\nreport: %+v\nmutant source:\n%s",
				i, or, mr, rep, msrc)
		}
		if oo != mo {
			t.Fatalf("program %d: optimized mutant output diverges\n  original: %q\n  mutant:   %q", i, oo, mo)
		}
	}
	if strictShrinks == 0 {
		t.Fatal("no accepted mutant shrank: the metamorphic check is vacuous")
	}
	t.Logf("metamorphic: %d accepted mutants strictly shrank", strictShrinks)
}
