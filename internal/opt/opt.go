// Package opt is the optimizing recompiler over the lint CFG: it rewrites
// assembled Tangled/Qat programs — dead-store elimination driven by lint's
// backward liveness, constant folding through lex/lhi chains, a peephole
// pass over Qat op sequences, and an energy-aware pass that eliminates and
// reversibilizes Qat operations to cut energy.StaticCost switched/erased
// bits — while provably preserving observable semantics (the final Tangled
// register file and the sys output stream).
//
// Safety is the headline, so the transformer is deliberately conservative:
// it refuses (returning the input unchanged, with a reported reason) any
// program whose behavior it cannot fully account for:
//
//   - lint-errors: the analyzer found an error-level defect; broken
//     programs are rejected, not rewritten.
//   - imprecise-cfg: an unresolved jumpr widened the CFG, so reachability
//     and liveness are conservative rather than exact.
//   - jumpr: even a resolved computed jump encodes its target as a register
//     constant the relayout would have to relocate; v1 does not.
//   - data-words: the image mixes code and data (or holds undecodable
//     words); shrinking code would move data that loads may address.
//   - memory-unproven: Tangled memory is unified, so a load whose address
//     cannot be proven to lie at or beyond the image's end could read the
//     program itself — any rewrite would be observable. Likewise stores.
//   - had-range: a reachable had pattern at or beyond the assumed
//     entanglement degree faults at run time, exposing mid-program state.
//   - no-fixpoint / internal-error: defensive bounds; never expected.
//
// On accepted programs every pass is a removal or a strictly cost-reducing
// 1:1 rewrite, so the output is never larger than the input, branch offsets
// can only shrink, and iteration reaches a fixpoint — which also makes the
// transform idempotent: opt(opt(p)) == opt(p). The differential harness in
// this package proves semantic preservation by running the shared
// 200-program corpus optimized-vs-unoptimized through the functional
// machine, both pipelines, and the RE backend; FuzzOptimize extends the
// proof to random programs. docs/OPT.md has the full safety argument.
package opt

import (
	"tangled/internal/aob"
	"tangled/internal/asm"
	"tangled/internal/energy"
	"tangled/internal/isa"
	"tangled/internal/lint"
)

// Refusal reasons, reported verbatim in Report.Reason and the JSON schema.
const (
	ReasonLintErrors = "lint-errors"     // error-level lint findings
	ReasonImprecise  = "imprecise-cfg"   // unresolved jumpr widened the CFG
	ReasonJumpr      = "jumpr"           // computed jumps need target relocation
	ReasonData       = "data-words"      // image mixes code and data
	ReasonMemory     = "memory-unproven" // a load/store may address the image
	ReasonHadRange   = "had-range"       // had pattern faults at the assumed ways
	ReasonNoFixpoint = "no-fixpoint"     // round budget exhausted (defensive)
	ReasonInternal   = "internal-error"  // invariant violated mid-rewrite (defensive)
)

// Pass names, as they appear in Report.Passes.
const (
	PassUnreachable = "unreachable"
	PassConstFold   = "constfold"
	PassPeephole    = "peephole"
	PassEnergy      = "energy"
	PassDeadStore   = "deadstore"
)

// passOrder is the sweep order of one round.
var passOrder = []string{PassUnreachable, PassConstFold, PassPeephole, PassEnergy, PassDeadStore}

// Options parameterizes an optimization.
type Options struct {
	// Enc is the binary instruction codec; nil means isa.Primary.
	Enc isa.Encoding
	// Ways is the entanglement degree the optimized program will run at;
	// 0 means the full hardware. It gates the had-range refusal and scales
	// the static energy accounting — optimizing for one degree and running
	// at a smaller one voids the safety argument.
	Ways int
	// MaxRounds bounds the rewrite/re-analyze iterations; 0 means 256.
	// Exhausting it refuses the program (never expected: every pass
	// strictly shrinks a finite measure).
	MaxRounds int
}

func (o Options) withDefaults() Options {
	if o.Enc == nil {
		o.Enc = isa.Primary
	}
	if o.Ways <= 0 || o.Ways > aob.MaxWays {
		o.Ways = aob.MaxWays
	}
	if o.MaxRounds <= 0 {
		o.MaxRounds = 256
	}
	return o
}

// PassStat counts one pass's effect across all rounds.
type PassStat struct {
	Pass string `json:"pass"`
	// Removed counts deleted instructions; Rewritten counts 1:1 (or
	// shrinking) replacements.
	Removed   int `json:"removed"`
	Rewritten int `json:"rewritten"`
}

// Report is the delta report of one optimization: what was (or was not)
// done, and the static instruction/energy savings.
type Report struct {
	// Applied reports the optimizer accepted the program and its output is
	// safe to run in the input's place (possibly unchanged). When false,
	// Reason says why the program was refused and the input was returned
	// verbatim.
	Applied bool   `json:"applied"`
	Reason  string `json:"reason,omitempty"`
	// Ways is the resolved entanglement degree the rewrite assumed.
	Ways int `json:"ways"`
	// Rounds counts rewrite/re-analyze iterations until the fixpoint.
	Rounds int `json:"rounds"`
	// Image and instruction sizes, before and after.
	WordsBefore int `json:"words_before"`
	WordsAfter  int `json:"words_after"`
	InstsBefore int `json:"insts_before"`
	InstsAfter  int `json:"insts_after"`
	// Static energy bounds summed over reachable instructions
	// (energy.StaticCost at the resolved ways).
	SwitchedBefore uint64 `json:"switched_bits_before"`
	SwitchedAfter  uint64 `json:"switched_bits_after"`
	ErasedBefore   uint64 `json:"erased_bits_before"`
	ErasedAfter    uint64 `json:"erased_bits_after"`
	// Passes breaks the work down by pass, in sweep order, zero-effect
	// passes included.
	Passes []PassStat `json:"passes,omitempty"`
}

// refused builds the identity report for a refusal.
func refused(reason string, opts Options, f *lint.Facts) *Report {
	r := &Report{Reason: reason, Ways: opts.Ways}
	if f != nil {
		r.WordsBefore, r.InstsBefore = f.Len, len(f.Insts)
		r.WordsAfter, r.InstsAfter = f.Len, len(f.Insts)
		r.SwitchedBefore, r.ErasedBefore = staticEnergy(f, opts.Ways)
		r.SwitchedAfter, r.ErasedAfter = r.SwitchedBefore, r.ErasedBefore
	}
	return r
}

// staticEnergy sums energy.StaticCost over the reachable instructions.
func staticEnergy(f *lint.Facts, ways int) (switched, erased uint64) {
	for i := range f.Insts {
		if !f.Insts[i].Reachable {
			continue
		}
		sw, er := energy.StaticCost(f.Insts[i].Inst.Op, ways)
		switched += sw
		erased += er
	}
	return switched, erased
}

// refusalReason checks the acceptance conditions against a fresh analysis
// and returns the first violated one ("" when the program is optimizable).
func refusalReason(rep *lint.Report, f *lint.Facts, ways int) string {
	switch {
	case rep.Errors > 0:
		return ReasonLintErrors
	case f.DataWords > 0:
		return ReasonData
	case f.Imprecise:
		return ReasonImprecise
	}
	for i := range f.Insts {
		fi := &f.Insts[i]
		if !fi.Reachable {
			continue
		}
		if fi.Inst.Op == isa.OpJumpr {
			return ReasonJumpr
		}
		if fi.Inst.Op == isa.OpQHad && int(fi.Inst.K) >= ways {
			return ReasonHadRange
		}
	}
	if !memorySafe(f) {
		return ReasonMemory
	}
	return ""
}

// Optimize rewrites p under opts. It never fails: a program the transformer
// cannot prove safe to rewrite is returned unchanged with Report.Applied
// false and the refusal reason set. When Report.Applied is true the returned
// program preserves p's observable semantics — final Tangled registers and
// sys output — on every backend, and is never longer than p.
func Optimize(p *asm.Program, opts Options) (*asm.Program, *Report) {
	opts = opts.withDefaults()
	lopts := lint.Options{Enc: opts.Enc, Ways: opts.Ways}

	rep, facts := lint.AnalyzeWithFacts(p, lopts)
	if reason := refusalReason(rep, facts, opts.Ways); reason != "" {
		return p, refused(reason, opts, facts)
	}

	out := &Report{Applied: true, Ways: opts.Ways,
		WordsBefore: facts.Len, InstsBefore: len(facts.Insts)}
	out.SwitchedBefore, out.ErasedBefore = staticEnergy(facts, opts.Ways)
	totals := make(map[string]*PassStat, len(passOrder))
	for _, name := range passOrder {
		ps := &PassStat{Pass: name}
		totals[name] = ps
		out.Passes = append(out.Passes, PassStat{}) // placeholder, filled below
	}

	cur := facts.Prog
	for {
		if out.Rounds >= opts.MaxRounds {
			return p, refused(ReasonNoFixpoint, opts, facts)
		}
		ir := buildIR(facts, opts)
		name, removed, rewritten := ir.sweep()
		if name == "" {
			break // fixpoint: no pass changed anything
		}
		totals[name].Removed += removed
		totals[name].Rewritten += rewritten
		out.Rounds++
		next, err := ir.emit()
		if err != nil {
			return p, refused(ReasonInternal, opts, facts)
		}
		// Re-analyze the rewritten program so the next round's facts (and
		// every pass's safety precondition) are exact, never stale.
		rep, facts = lint.AnalyzeWithFacts(next, lopts)
		if reason := refusalReason(rep, facts, opts.Ways); reason != "" {
			// A valid rewrite can never introduce a refusal condition; if
			// one appears the transformer is wrong, so hand back the input.
			return p, refused(ReasonInternal, opts, facts)
		}
		cur = next
	}

	out.WordsAfter, out.InstsAfter = facts.Len, len(facts.Insts)
	out.SwitchedAfter, out.ErasedAfter = staticEnergy(facts, opts.Ways)
	for i, name := range passOrder {
		out.Passes[i] = *totals[name]
	}
	if out.WordsAfter > out.WordsBefore {
		return p, refused(ReasonInternal, opts, facts)
	}
	return cur, out
}

// OptimizeSource assembles src and optimizes the result; assembly failures
// are returned as the assembler's ErrorList.
func OptimizeSource(src string, opts Options) (*asm.Program, *Report, error) {
	p, err := asm.Assemble(src)
	if err != nil {
		return nil, nil, err
	}
	out, rep := Optimize(p, opts)
	return out, rep, nil
}

// memorySafe proves every reachable load and store addresses memory at or
// beyond the image's end, so no rewrite of the image is observable through
// the unified memory. The proof is a per-block forward sweep of register
// lower bounds: lex yields an exact value, lhi a high-byte bound (the result
// is at least imm<<8 whatever the low byte holds), copy propagates, every
// other write resets to the trivial bound 0; block entries are conservative.
// The canonical pinned-store idiom `lhi $s,0x7F; store $d,$s` proves this
// way; random addresses do not, and refuse the program.
func memorySafe(f *lint.Facts) bool {
	if f.Len >= 1<<16 {
		return false // a full-memory image leaves no provably-safe addresses
	}
	limit := uint16(f.Len)
	for bi := range f.Blocks {
		var bound [isa.NumRegs]uint16
		for _, ii := range f.Blocks[bi].Insts {
			in := f.Insts[ii].Inst
			switch in.Op {
			case isa.OpLoad, isa.OpStore:
				if bound[in.RS] < limit {
					return false
				}
				if in.Op == isa.OpLoad {
					bound[in.RD] = 0
				}
			case isa.OpLex:
				bound[in.RD] = uint16(int16(in.Imm))
			case isa.OpLhi:
				bound[in.RD] = uint16(uint8(in.Imm)) << 8
			case isa.OpCopy:
				bound[in.RD] = bound[in.RS]
			default:
				for r := 0; r < isa.NumRegs; r++ {
					if f.Insts[ii].Eff.WriteRegs&(1<<r) != 0 {
						bound[r] = 0
					}
				}
			}
		}
	}
	return true
}

// Disassemble renders a program's words under the options' encoding, for
// the CLI's rewritten-assembly listing.
func Disassemble(p *asm.Program, opts Options) []string {
	return asm.DisassembleWith(p.Words, opts.withDefaults().Enc)
}
