package opt

// The rewrite IR: one node per decoded instruction, carrying the lint facts
// it was built from. Passes mark nodes removed or replace their instruction;
// emit relays the survivors out as a fresh word image, recomputing branch
// offsets across the removed gaps and remapping the symbol table and source
// map. Every transform is a removal or a same-or-shorter replacement, so
// instruction distances only shrink and recomputed 8-bit branch offsets can
// never overflow their original encoding.

import (
	"fmt"

	"tangled/internal/asm"
	"tangled/internal/isa"
	"tangled/internal/lint"
)

// node is one instruction under rewrite.
type node struct {
	fact    *lint.InstFact
	inst    isa.Inst // current (possibly rewritten) instruction
	removed bool
}

// words is the node's current encoded length.
func (n *node) words() int { return n.inst.Words() }

// ir is one round's rewrite state.
type ir struct {
	facts *lint.Facts
	opts  Options
	nodes []node
}

// buildIR projects fresh lint facts into rewrite nodes.
func buildIR(f *lint.Facts, opts Options) *ir {
	r := &ir{facts: f, opts: opts, nodes: make([]node, len(f.Insts))}
	for i := range f.Insts {
		r.nodes[i] = node{fact: &f.Insts[i], inst: f.Insts[i].Inst}
	}
	return r
}

// sweep runs the passes in order and stops at the first one that changes
// anything, returning its name and change counts — so every pass always
// executes against facts that exactly describe the program it sees (a pass
// that rewrote control flow could otherwise leave later passes with stale
// pairing or liveness). Returns "" when no pass changed anything: the
// fixpoint.
func (r *ir) sweep() (pass string, removed, rewritten int) {
	for _, name := range passOrder {
		var rm, rw int
		switch name {
		case PassUnreachable:
			rm, rw = r.passUnreachable()
		case PassConstFold:
			rm, rw = r.passConstFold()
		case PassPeephole:
			rm, rw = r.passPeephole()
		case PassEnergy:
			rm, rw = r.passEnergy()
		case PassDeadStore:
			rm, rw = r.passDeadStore()
		}
		if rm+rw > 0 {
			return name, rm, rw
		}
	}
	return "", 0, 0
}

// remove deletes node i.
func (r *ir) remove(i int) { r.nodes[i].removed = true }

// rewrite replaces node i's instruction; replacements must never be longer
// than the original (the relayout's no-growth invariant).
func (r *ir) rewrite(i int, in isa.Inst) {
	if in.Words() > r.nodes[i].words() {
		panic("opt: rewrite grows an instruction")
	}
	r.nodes[i].inst = in
}

// emit lays the retained nodes out as a fresh program. Branch targets are
// carried as original absolute addresses and re-resolved against the new
// layout; an original address whose instruction was removed forwards to the
// next retained instruction (removed nodes are exactly the no-ops and
// never-taken branches execution would have fallen straight through).
func (r *ir) emit() (*asm.Program, error) {
	// Assign new addresses to retained nodes.
	newAddr := make([]int, len(r.nodes))
	addr := 0
	for i := range r.nodes {
		newAddr[i] = addr
		if !r.nodes[i].removed {
			addr += r.nodes[i].words()
		}
	}
	total := addr

	// mapOld forwards an original address to its new one: the new address
	// of the first retained instruction at or after it, or the image end.
	mapOld := func(orig uint16) int {
		if i, ok := r.facts.ByAddr[orig]; ok {
			for ; i < len(r.nodes); i++ {
				if !r.nodes[i].removed {
					return newAddr[i]
				}
			}
			return total
		}
		if int(orig) >= r.facts.Len {
			return total + int(orig) - r.facts.Len
		}
		// Inside the image but not an instruction start: unreachable for an
		// accepted program (no data words, no mid-instruction transfers).
		return total
	}

	p := &asm.Program{
		Words:   make([]uint16, 0, total),
		Source:  make([]int, 0, total),
		Data:    make([]bool, total),
		Symbols: make(map[string]uint16, len(r.facts.Prog.Symbols)),
	}
	for i := range r.nodes {
		n := &r.nodes[i]
		if n.removed {
			continue
		}
		inst := n.inst
		if inst.Op == isa.OpBrf || inst.Op == isa.OpBrt {
			origTarget := n.fact.Addr + uint16(n.fact.Words) + uint16(int16(n.fact.Inst.Imm))
			off := mapOld(origTarget) - (newAddr[i] + inst.Words())
			if off < -128 || off > 127 {
				return nil, fmt.Errorf("opt: branch at %#04x: relaid offset %d overflows int8", n.fact.Addr, off)
			}
			inst.Imm = int8(off)
		}
		ws, err := r.opts.Enc.Encode(inst)
		if err != nil {
			return nil, fmt.Errorf("opt: re-encode at %#04x: %w", n.fact.Addr, err)
		}
		if len(ws) != inst.Words() {
			return nil, fmt.Errorf("opt: re-encode at %#04x: %d words, want %d", n.fact.Addr, len(ws), inst.Words())
		}
		p.Words = append(p.Words, ws...)
		for range ws {
			p.Source = append(p.Source, n.fact.Line)
		}
	}
	if len(p.Words) != total {
		return nil, fmt.Errorf("opt: layout drifted: %d words, want %d", len(p.Words), total)
	}
	for name, a := range r.facts.Prog.Symbols {
		p.Symbols[name] = uint16(mapOld(a))
	}
	return p, nil
}
