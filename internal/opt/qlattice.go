package opt

// The abstract Qat register lattice shared by the energy rewrite pass and
// the static profiler (internal/profile). A register's abstract value is one
// of the channel functions the init instructions can produce — the constant
// fills Zero/One and the Hadamard pattern Had(k) on channel bit k with its
// complement NHad(k) — or Unknown. The transfer functions fold the bitwise
// gates over these states exactly, so both consumers prove the same facts:
// the energy pass that a write is redundant (or reversible), the profiler
// that a written value is structured and therefore run-length compressible.

// QKind enumerates the abstract states.
type QKind uint8

const (
	// QUnknown is the lattice top: no structural fact is known.
	QUnknown QKind = iota
	// QZero and QOne are the constant channel functions.
	QZero
	QOne
	// QHad is the Hadamard pattern on channel bit K; QNHad its complement.
	QHad
	QNHad
)

// QState is one register's abstract value; the zero value is Unknown.
type QState struct {
	Kind QKind
	// K is the channel bit of QHad/QNHad states; meaningless otherwise.
	K uint8
}

// IsConst reports a constant fill (Zero or One).
func (s QState) IsConst() bool { return s.Kind == QZero || s.Kind == QOne }

// QInvert is the abstract not gate.
func QInvert(s QState) QState {
	switch s.Kind {
	case QZero:
		return QState{Kind: QOne}
	case QOne:
		return QState{Kind: QZero}
	case QHad:
		return QState{Kind: QNHad, K: s.K}
	case QNHad:
		return QState{Kind: QHad, K: s.K}
	}
	return QState{}
}

// QAnd/QOr/QXor fold two known channel functions; unknown operands yield
// unknown results except where one operand forces the output.
func QAnd(a, b QState) QState {
	switch {
	case a.Kind == QZero || b.Kind == QZero:
		return QState{Kind: QZero}
	case a.Kind == QOne:
		return b
	case b.Kind == QOne:
		return a
	case a.Kind == QUnknown || b.Kind == QUnknown:
		return QState{}
	case a == b:
		return a
	case a.K == b.K: // Had(k) & NHad(k)
		return QState{Kind: QZero}
	}
	return QState{}
}

func QOr(a, b QState) QState {
	switch {
	case a.Kind == QOne || b.Kind == QOne:
		return QState{Kind: QOne}
	case a.Kind == QZero:
		return b
	case b.Kind == QZero:
		return a
	case a.Kind == QUnknown || b.Kind == QUnknown:
		return QState{}
	case a == b:
		return a
	case a.K == b.K: // Had(k) | NHad(k)
		return QState{Kind: QOne}
	}
	return QState{}
}

func QXor(a, b QState) QState {
	switch {
	case a.Kind == QUnknown || b.Kind == QUnknown:
		return QState{}
	case a.Kind == QZero:
		return b
	case b.Kind == QZero:
		return a
	case a.Kind == QOne:
		return QInvert(b)
	case b.Kind == QOne:
		return QInvert(a)
	case a == b:
		return QState{Kind: QZero}
	case a.K == b.K: // Had(k) ^ NHad(k)
		return QState{Kind: QOne}
	}
	return QState{}
}
