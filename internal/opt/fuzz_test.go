package opt

// FuzzOptimize extends the differential proof to arbitrary assembly: any
// source the assembler accepts is optimized and the invariants are asserted
// unconditionally — refusals return the input verbatim, accepted rewrites
// never grow, are idempotent, and (when the original halts or faults within
// budget) preserve the observable outcome on the reference machine.

import (
	"strings"
	"testing"

	"tangled/internal/asm"
	"tangled/internal/cpu"
	"tangled/internal/farm/farmtest"
)

const fuzzBudget = 100_000

// fuzzRun executes p and returns the observable outcome; ok is false when
// the budget ran out (no comparison is meaningful then: the optimized
// program retires fewer instructions and may legitimately get further).
func fuzzRun(p *asm.Program) (regs [16]uint16, output string, failed, ok bool) {
	m := cpu.New(16)
	var out strings.Builder
	m.Out = &out
	if err := m.Load(p); err != nil {
		return regs, "", false, false
	}
	err := m.Run(fuzzBudget)
	if err == cpu.ErrNoHalt {
		return regs, "", false, false
	}
	return m.Regs, out.String(), err != nil, true
}

func FuzzOptimize(f *testing.F) {
	f.Add("\tlex\t$0, 0\n\tsys\n")
	f.Add("\tlex\t$1, 2\n\tlex\t$2, 3\n\tadd\t$1, $2\n\tlex\t$0, 0\n\tsys\n")
	f.Add("\tone\t@1\n\tnot\t@1\n\tnot\t@1\n\tlex\t$1, 0\n\tmeas\t$1, @1\n\tlex\t$0, 0\n\tsys\n")
	f.Add("\tzero\t@2\n\tzero\t@2\n\tcnot\t@1, @2\n\tlex\t$0, 0\n\tsys\n")
	f.Add("loop:\tlex\t$1, 1\n\tbrt\t$1, loop\n\tlex\t$0, 0\n\tsys\n")
	for i := 0; i < 8; i++ {
		f.Add(farmtest.Generate(farmtest.Seed(i)))
	}

	f.Fuzz(func(t *testing.T, src string) {
		p, err := asm.Assemble(src)
		if err != nil {
			t.Skip()
		}
		q, rep := Optimize(p, Options{})
		if !rep.Applied {
			if q != p {
				t.Fatalf("refused (%s) but input not returned verbatim", rep.Reason)
			}
			return
		}

		// No growth, ever.
		if len(q.Words) > len(p.Words) {
			t.Fatalf("optimizer grew the program: %d -> %d words", len(p.Words), len(q.Words))
		}

		// Idempotence: opt(opt(p)) == opt(p), in zero further rounds.
		q2, rep2 := Optimize(q, Options{})
		if !rep2.Applied {
			t.Fatalf("re-optimization refused: %s", rep2.Reason)
		}
		if rep2.Rounds != 0 || len(q2.Words) != len(q.Words) {
			t.Fatalf("not idempotent: %d rounds, %d -> %d words", rep2.Rounds, len(q.Words), len(q2.Words))
		}
		for i := range q.Words {
			if q2.Words[i] != q.Words[i] {
				t.Fatalf("word %d differs on re-optimization", i)
			}
		}

		// Semantic equivalence whenever the original halts (or faults) in
		// budget: final register file, output stream, and clean-vs-faulted
		// outcome must all match.
		pr, po, pf, ok := fuzzRun(p)
		if !ok {
			return
		}
		qr, qo, qf, qok := fuzzRun(q)
		if !qok {
			t.Fatalf("original finishes in budget but optimized does not")
		}
		if pf != qf {
			t.Fatalf("fault status diverges: original=%v optimized=%v", pf, qf)
		}
		if pr != qr {
			t.Fatalf("registers diverge:\n  original:  %v\n  optimized: %v\nsource:\n%s", pr, qr, src)
		}
		if po != qo {
			t.Fatalf("output diverges:\n  original:  %q\n  optimized: %q", po, qo)
		}
	})
}
