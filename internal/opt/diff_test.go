package opt_test

// The differential proof of the optimizer: every program in the shared
// 200-program corpus (internal/farm/farmtest) is optimized and then executed
// optimized-vs-unoptimized on the functional reference machine, the 4-stage
// pipeline, the 5-stage pipeline, and the run-length-compressed RE backend —
// all through the farm engine, the same path the server uses. The observable
// outcome (final Tangled register file and sys output) must be byte-identical
// on every backend. Programs the optimizer refuses must come back verbatim.
//
// Retired instruction counts and cycle counts are NOT compared: shrinking the
// program is the point. Both sides halt within the corpus budget because the
// optimized program retires at most as many instructions as the original.

import (
	"testing"

	"tangled/internal/asm"
	"tangled/internal/farm"
	"tangled/internal/farm/farmtest"
	"tangled/internal/opt"
	"tangled/internal/pipeline"
	"tangled/internal/qat"
)

// diffBackends builds the four-backend job set for one program.
func diffBackends(name string, prog *asm.Program) []farm.Job {
	p4 := pipeline.Config{Stages: 4, Ways: farmtest.Ways, Forwarding: true, MulLatency: 1, QatNextLatency: 1}
	p5 := pipeline.Config{Stages: 5, Ways: farmtest.Ways, Forwarding: true, MulLatency: 1, QatNextLatency: 1}
	return []farm.Job{
		{Name: name + "/functional", Prog: prog, Mode: farm.Functional, Ways: farmtest.Ways, MaxSteps: farmtest.Budget},
		{Name: name + "/pipe4", Prog: prog, Mode: farm.Pipelined, Pipeline: p4, MaxSteps: farmtest.Budget},
		{Name: name + "/pipe5", Prog: prog, Mode: farm.Pipelined, Pipeline: p5, MaxSteps: farmtest.Budget},
		{Name: name + "/re", Prog: prog, Mode: farm.Functional, Ways: farmtest.Ways,
			Backend: qat.BackendRE, MaxSteps: farmtest.Budget},
	}
}

// TestDifferentialCorpus is the optimizer's main correctness gate.
func TestDifferentialCorpus(t *testing.T) {
	engine := farm.New(0)
	applied, refused, savedWords := 0, 0, 0
	reasons := map[string]int{}

	for i := 0; i < farmtest.Programs; i++ {
		src := farmtest.Generate(farmtest.Seed(i))
		prog, err := asm.Assemble(src)
		if err != nil {
			t.Fatalf("program %d does not assemble: %v", i, err)
		}
		optProg, rep := opt.Optimize(prog, opt.Options{Ways: farmtest.Ways})
		if !rep.Applied {
			refused++
			reasons[rep.Reason]++
			if optProg != prog {
				t.Fatalf("program %d: refused (%s) but not returned verbatim", i, rep.Reason)
			}
			continue
		}
		applied++
		savedWords += rep.WordsBefore - rep.WordsAfter
		if len(optProg.Words) > len(prog.Words) {
			t.Fatalf("program %d: optimizer grew the program %d -> %d words",
				i, len(prog.Words), len(optProg.Words))
		}

		jobs := append(diffBackends("orig", prog), diffBackends("opt", optProg)...)
		results, _ := engine.Run(nil, jobs)
		for _, res := range results {
			if res.Err != nil {
				t.Fatalf("program %d, %s: %v\n%s", i, res.Name, res.Err, src)
			}
		}
		for b := 0; b < 4; b++ {
			o, q := results[b], results[b+4]
			if o.Regs != q.Regs {
				t.Fatalf("program %d, %s: registers diverge\n  original:  %v\n  optimized: %v\nreport: %+v\nsource:\n%s",
					i, o.Name, o.Regs, q.Regs, rep, src)
			}
			if o.Output != q.Output {
				t.Fatalf("program %d, %s: output diverges\n  original:  %q\n  optimized: %q\nsource:\n%s",
					i, o.Name, o.Output, q.Output, src)
			}
			if q.Insts > o.Insts {
				t.Fatalf("program %d, %s: optimized retired MORE instructions (%d > %d)",
					i, o.Name, q.Insts, o.Insts)
			}
		}
	}

	t.Logf("corpus: %d applied, %d refused (%v), %d words saved", applied, refused, reasons, savedWords)
	if applied == 0 {
		t.Fatal("optimizer accepted nothing from the corpus: the acceptance conditions are vacuous")
	}
	if savedWords == 0 {
		t.Fatal("optimizer saved nothing across the corpus: the passes are vacuous")
	}
}

// TestCorpusIdempotence re-optimizes every accepted corpus program and
// requires a byte-identical image in zero rounds: the fixpoint is stable.
func TestCorpusIdempotence(t *testing.T) {
	for i := 0; i < farmtest.Programs; i++ {
		prog, err := asm.Assemble(farmtest.Generate(farmtest.Seed(i)))
		if err != nil {
			t.Fatalf("program %d: %v", i, err)
		}
		q1, rep1 := opt.Optimize(prog, opt.Options{Ways: farmtest.Ways})
		if !rep1.Applied {
			continue
		}
		q2, rep2 := opt.Optimize(q1, opt.Options{Ways: farmtest.Ways})
		if !rep2.Applied {
			t.Fatalf("program %d: re-optimization refused: %s", i, rep2.Reason)
		}
		if rep2.Rounds != 0 || len(q2.Words) != len(q1.Words) {
			t.Fatalf("program %d: not a fixpoint: %d rounds, %d -> %d words",
				i, rep2.Rounds, len(q1.Words), len(q2.Words))
		}
		for j := range q1.Words {
			if q2.Words[j] != q1.Words[j] {
				t.Fatalf("program %d: word %d differs on re-optimization", i, j)
			}
		}
	}
}
