package opt

// The rewrite passes. Each runs over an IR freshly rebuilt from a fresh
// lint analysis (see ir.sweep), so its safety preconditions — reachability,
// br-pair marks, block liveness — exactly describe the program it rewrites.
//
//   - unreachable: drop instructions no execution reaches (the CFG is
//     precise for accepted programs, so this is exact, not heuristic).
//   - constfold: forward constant sweep per basic block over the Tangled
//     file (entry block seeded all-zero, matching the loader); folds known
//     ALU results into lex, collapses lex/lhi chains, drops no-op writes
//     and never-taken branches.
//   - peephole: structural Qat rewrites — double-not cancellation (Tangled
//     not/neg too), self-swap elimination, xor/cnot self-operand identities.
//   - energy: an abstract-state lattice over the Qat file (Zero / One /
//     Had(k) / NHad(k) / unknown) that drops redundant re-initialization
//     and replaces irreversible constant writes with the reversible not
//     when the lattice proves them equivalent — directly minimizing the
//     energy.StaticCost switched/erased-bit bounds per block.
//   - deadstore: backward walk per block from lint's live-out sets,
//     deleting effect-free instructions every written register of which is
//     dead (the rewriting counterpart of lint's dead-store diagnostic).
//
// Every rule removes an instruction or replaces it with a strictly
// lower-ranked one (ccnot→cnot→not, lhi→lex, constant and/or/xor→zero/one,
// never the reverse), so the sweep measure strictly decreases and
// iteration terminates.

import (
	"tangled/internal/isa"
	"tangled/internal/lint"
)

// entrySeedBlock returns the block whose abstract state may be seeded with
// the loader's all-zero machine: the block starting at address 0, provided
// nothing branches back into it. -1 when no block qualifies.
func (r *ir) entrySeedBlock() int {
	i, ok := r.facts.ByAddr[0]
	if !ok {
		return -1
	}
	b := r.facts.Insts[i].Block
	if b < 0 || len(r.facts.Blocks[b].Preds) > 0 || r.facts.Blocks[b].Insts[0] != i {
		return -1
	}
	return b
}

// passUnreachable removes instructions the (precise) CFG proves no
// execution reaches.
func (r *ir) passUnreachable() (removed, rewritten int) {
	for i := range r.nodes {
		if !r.nodes[i].removed && !r.nodes[i].fact.Reachable {
			r.remove(i)
			removed++
		}
	}
	return removed, rewritten
}

// fitsLex reports v is representable as lex's sign-extended 8-bit immediate.
func fitsLex(v uint16) bool {
	s := int16(v)
	return s >= -128 && s <= 127
}

// evalALU computes the integer ALU ops the folder understands, mirroring
// cpu.execTangled exactly. ok is false for ops the folder must not model
// (floating point, loads, reductions).
func evalALU(op isa.Op, dv, sv uint16) (uint16, bool) {
	switch op {
	case isa.OpAdd:
		return dv + sv, true
	case isa.OpAnd:
		return dv & sv, true
	case isa.OpOr:
		return dv | sv, true
	case isa.OpXor:
		return dv ^ sv, true
	case isa.OpMul:
		return uint16(int16(dv) * int16(sv)), true
	case isa.OpSlt:
		if int16(dv) < int16(sv) {
			return 1, true
		}
		return 0, true
	case isa.OpShift:
		return shiftVal(dv, int16(sv)), true
	case isa.OpCopy:
		return sv, true
	case isa.OpNot:
		return ^dv, true
	case isa.OpNeg:
		return uint16(-int16(dv)), true
	}
	return 0, false
}

// shiftVal mirrors the cpu shift helper: left for non-negative counts,
// arithmetic right for negative, saturating at full shifts.
func shiftVal(v uint16, by int16) uint16 {
	if by >= 0 {
		if by >= 16 {
			return 0
		}
		return v << uint(by)
	}
	n := uint(-by)
	if n >= 16 {
		n = 15
	}
	return uint16(int16(v) >> n)
}

// passConstFold propagates Tangled register constants forward through each
// block and exploits them: known ALU results fold to lex, lhi over a known
// register collapses (to nothing, or to a single lex when the full value
// fits), writes of a register's current value vanish, and branches whose
// condition is a known constant that never takes them are deleted.
func (r *ir) passConstFold() (removed, rewritten int) {
	seed := r.entrySeedBlock()
	for bi := range r.facts.Blocks {
		var known uint16
		var vals [isa.NumRegs]uint16
		if bi == seed {
			known = 1<<isa.NumRegs - 1
		}
		isKnown := func(reg uint8) bool { return known&(1<<reg) != 0 }
		set := func(reg uint8, v uint16) { known |= 1 << reg; vals[reg] = v }
		clear := func(reg uint8) { known &^= 1 << reg }

		for _, ii := range r.facts.Blocks[bi].Insts {
			n := &r.nodes[ii]
			if n.removed {
				continue
			}
			in := n.inst
			d, s := in.RD, in.RS
			switch in.Op {
			case isa.OpLex:
				v := uint16(int16(in.Imm))
				if isKnown(d) && vals[d] == v {
					r.remove(ii)
					removed++
				} else {
					set(d, v)
				}
			case isa.OpLhi:
				hv := uint16(uint8(in.Imm)) << 8
				if !isKnown(d) {
					break // high byte becomes hv, low byte unknown: still unknown
				}
				v := vals[d]&0x00FF | hv
				switch {
				case v == vals[d]:
					r.remove(ii)
					removed++
				case fitsLex(v):
					r.rewrite(ii, isa.Inst{Op: isa.OpLex, RD: d, Imm: int8(v)})
					rewritten++
					set(d, v)
				default:
					set(d, v)
				}
			case isa.OpBrf:
				if isKnown(d) && vals[d] != 0 {
					r.remove(ii) // never taken
					removed++
				}
			case isa.OpBrt:
				if isKnown(d) && vals[d] == 0 {
					r.remove(ii) // never taken
					removed++
				}
			case isa.OpAdd, isa.OpAnd, isa.OpOr, isa.OpXor, isa.OpMul,
				isa.OpSlt, isa.OpShift, isa.OpCopy, isa.OpNot, isa.OpNeg:
				oneOperand := in.Op == isa.OpNot || in.Op == isa.OpNeg
				if isKnown(d) && (oneOperand || isKnown(s)) {
					nv, ok := evalALU(in.Op, vals[d], vals[s])
					if !ok {
						clear(d)
						break
					}
					switch {
					case nv == vals[d]:
						r.remove(ii) // writes the value already there
						removed++
					case fitsLex(nv):
						r.rewrite(ii, isa.Inst{Op: isa.OpLex, RD: d, Imm: int8(nv)})
						rewritten++
						set(d, nv)
					default:
						set(d, nv) // result known even without a rewrite
					}
					break
				}
				// Identity folds that need only one side.
				switch {
				case in.Op == isa.OpCopy && d == s,
					(in.Op == isa.OpAnd || in.Op == isa.OpOr) && d == s,
					(in.Op == isa.OpAdd || in.Op == isa.OpOr || in.Op == isa.OpXor) && isKnown(s) && vals[s] == 0 && d != s,
					in.Op == isa.OpAnd && isKnown(s) && vals[s] == 0xFFFF,
					in.Op == isa.OpMul && isKnown(s) && vals[s] == 1,
					in.Op == isa.OpShift && isKnown(s) && vals[s] == 0:
					r.remove(ii) // no-op on $d
					removed++
				case in.Op == isa.OpXor && d == s:
					r.rewrite(ii, isa.Inst{Op: isa.OpLex, RD: d}) // x^x == 0
					rewritten++
					set(d, 0)
				case in.Op == isa.OpCopy && isKnown(s):
					set(d, vals[s])
				default:
					clear(d)
				}
			case isa.OpQMeas, isa.OpQNext, isa.OpQPop, isa.OpLoad,
				isa.OpAddf, isa.OpMulf, isa.OpFloat, isa.OpInt, isa.OpNegf, isa.OpRecip:
				clear(d)
			default:
				// store, sys, register-only Qat ops: no Tangled writes.
			}
		}
	}
	return removed, rewritten
}

// passPeephole applies structural identities over instruction sequences:
// self-targeting swap forms are no-ops, xor/cnot with repeated operands
// collapse to cheaper ops, and not-not pairs (Tangled and Qat) cancel when
// nothing in between observes the register.
func (r *ir) passPeephole() (removed, rewritten int) {
	for bi := range r.facts.Blocks {
		insts := r.facts.Blocks[bi].Insts
		for k, ii := range insts {
			n := &r.nodes[ii]
			if n.removed {
				continue
			}
			in := n.inst
			switch in.Op {
			case isa.OpQSwap:
				if in.QA == in.QB {
					r.remove(ii)
					removed++
				}
			case isa.OpQCswap:
				if in.QA == in.QB {
					r.remove(ii)
					removed++
				}
			case isa.OpQCnot:
				if in.QA == in.QB {
					// a ^= a: clears the register.
					r.rewrite(ii, isa.Inst{Op: isa.OpQZero, QA: in.QA})
					rewritten++
				}
			case isa.OpQXor:
				switch {
				case in.QB == in.QC:
					r.rewrite(ii, isa.Inst{Op: isa.OpQZero, QA: in.QA})
					rewritten++
				case in.QA == in.QB:
					// a = a^c: the in-place reversible form.
					r.rewrite(ii, isa.Inst{Op: isa.OpQCnot, QA: in.QA, QB: in.QC})
					rewritten++
				case in.QA == in.QC:
					r.rewrite(ii, isa.Inst{Op: isa.OpQCnot, QA: in.QA, QB: in.QB})
					rewritten++
				}
			case isa.OpQNot:
				if r.cancelQatNot(insts[k+1:], ii, in.QA) {
					removed += 2
				}
			case isa.OpNot, isa.OpNeg:
				if r.cancelCPUInv(insts[k+1:], ii, in.Op, in.RD) {
					removed += 2
				}
			}
		}
	}
	return removed, rewritten
}

// cancelQatNot removes the not at index ii together with the next not of
// the same Qat register, provided nothing in between reads or writes it.
// Qat state is invisible to sys (the register file dies at halt), so only
// Qat-side accesses form barriers.
func (r *ir) cancelQatNot(rest []int, ii int, q uint8) bool {
	for _, jj := range rest {
		m := &r.nodes[jj]
		if m.removed {
			continue
		}
		if m.inst.Op == isa.OpQNot && m.inst.QA == q {
			r.remove(ii)
			r.remove(jj)
			return true
		}
		eff := isa.InstEffects(m.inst)
		if eff.ReadsQat(q) || eff.WritesQat(q) {
			return false
		}
	}
	return false
}

// cancelCPUInv removes a not/neg pair over the same Tangled register when
// nothing in between observes it. sys is a barrier: it may halt (or fault),
// exposing the whole register file mid-pair.
func (r *ir) cancelCPUInv(rest []int, ii int, op isa.Op, reg uint8) bool {
	bit := uint16(1) << reg
	for _, jj := range rest {
		m := &r.nodes[jj]
		if m.removed {
			continue
		}
		if m.inst.Op == op && m.inst.RD == reg {
			r.remove(ii)
			r.remove(jj)
			return true
		}
		eff := isa.InstEffects(m.inst)
		if eff.MayHalt || (eff.ReadRegs|eff.WriteRegs)&bit != 0 {
			return false
		}
	}
	return false
}

// The abstract Qat register states for the energy pass live in qlattice.go
// (QState and the QInvert/QAnd/QOr/QXor transfer functions), shared with the
// static profiler.

// passEnergy walks each block with the abstract Qat lattice: initializations
// that re-create the current state vanish, constant writes over the inverse
// state become the reversible not (zero erased bits), gates over constant
// operands collapse to their result, and control-known cswap/ccnot shed
// operands — every rule a direct reduction of the block's static
// switched/erased-bit bound.
func (r *ir) passEnergy() (removed, rewritten int) {
	seed := r.entrySeedBlock()
	var st [isa.NumQRegs]QState
	for bi := range r.facts.Blocks {
		for q := range st {
			st[q] = QState{}
		}
		if bi == seed {
			for q := range st {
				st[q] = QState{Kind: QZero}
			}
		}
		for _, ii := range r.facts.Blocks[bi].Insts {
			n := &r.nodes[ii]
			if n.removed {
				continue
			}
			in := n.inst
			a, b, c := in.QA, in.QB, in.QC
			// constInit handles zero/one/had uniformly: drop when the state
			// is already want; flip reversibly when it is the exact inverse.
			constInit := func(want QState) {
				switch {
				case st[a] == want:
					r.remove(ii)
					removed++
				case st[a] == QInvert(want):
					r.rewrite(ii, isa.Inst{Op: isa.OpQNot, QA: a})
					rewritten++
					st[a] = want
				default:
					st[a] = want
				}
			}
			// foldGate replaces a two-word gate whose folded result is a
			// known constant with the one-word fill, else records the state.
			foldGate := func(res QState) {
				switch res.Kind {
				case QZero:
					r.rewrite(ii, isa.Inst{Op: isa.OpQZero, QA: a})
					rewritten++
				case QOne:
					r.rewrite(ii, isa.Inst{Op: isa.OpQOne, QA: a})
					rewritten++
				}
				st[a] = res
			}
			switch in.Op {
			case isa.OpQZero:
				constInit(QState{Kind: QZero})
			case isa.OpQOne:
				constInit(QState{Kind: QOne})
			case isa.OpQHad:
				constInit(QState{Kind: QHad, K: in.K})
			case isa.OpQNot:
				st[a] = QInvert(st[a])
			case isa.OpQAnd:
				foldGate(QAnd(st[b], st[c]))
			case isa.OpQOr:
				foldGate(QOr(st[b], st[c]))
			case isa.OpQXor:
				foldGate(QXor(st[b], st[c]))
			case isa.OpQCnot:
				switch st[b].Kind {
				case QZero:
					r.remove(ii) // a ^= 0
					removed++
				case QOne:
					r.rewrite(ii, isa.Inst{Op: isa.OpQNot, QA: a})
					rewritten++
					st[a] = QInvert(st[a])
				default:
					st[a] = QXor(st[a], st[b])
				}
			case isa.OpQCcnot:
				t := QAnd(st[b], st[c])
				switch {
				case t.Kind == QZero:
					r.remove(ii) // a ^= 0
					removed++
				case t.Kind == QOne:
					r.rewrite(ii, isa.Inst{Op: isa.OpQNot, QA: a})
					rewritten++
					st[a] = QInvert(st[a])
				case st[b].Kind == QOne:
					r.rewrite(ii, isa.Inst{Op: isa.OpQCnot, QA: a, QB: c})
					rewritten++
					st[a] = QXor(st[a], st[c])
				case st[c].Kind == QOne:
					r.rewrite(ii, isa.Inst{Op: isa.OpQCnot, QA: a, QB: b})
					rewritten++
					st[a] = QXor(st[a], st[b])
				default:
					st[a] = QXor(st[a], t)
				}
			case isa.OpQSwap:
				if a != b && st[a] == st[b] && st[a].Kind != QUnknown {
					r.remove(ii) // swapping equal values
					removed++
					break
				}
				st[a], st[b] = st[b], st[a]
			case isa.OpQCswap:
				switch {
				case a == b:
					// structural no-op; the peephole removes it
				case st[c].Kind == QZero:
					r.remove(ii) // control never set
					removed++
				case st[a] == st[b] && st[a].Kind != QUnknown:
					r.remove(ii) // swapping equal values, any control
					removed++
				case st[c].Kind == QOne:
					r.rewrite(ii, isa.Inst{Op: isa.OpQSwap, QA: a, QB: b})
					rewritten++
					st[a], st[b] = st[b], st[a]
				default:
					st[a], st[b] = QState{}, QState{}
				}
			}
		}
	}
	return removed, rewritten
}

// passDeadStore deletes instructions whose every written register is dead,
// walking each block backward from lint's live-out set. Control transfers,
// possible halts, and memory writes are never deleted; everything else is
// observable only through its register results.
func (r *ir) passDeadStore() (removed, rewritten int) {
	for bi := range r.facts.Blocks {
		bf := &r.facts.Blocks[bi]
		live := bf.LiveOut
		for k := len(bf.Insts) - 1; k >= 0; k-- {
			ii := bf.Insts[k]
			n := &r.nodes[ii]
			if n.removed {
				continue
			}
			eff := isa.InstEffects(n.inst)
			d := lint.DefSet(n.inst)
			if !eff.Control && !eff.MayHalt && !eff.MemWrite &&
				!d.Empty() && !d.Intersects(live) {
				// Dead: removing it cannot change any live value, and the
				// walk continues as if it were absent, so a whole dead
				// chain cascades in one backward sweep.
				r.remove(ii)
				removed++
				continue
			}
			live = live.Diff(d).Union(lint.LiveUseSet(n.inst, n.fact.PairBr))
		}
	}
	return removed, rewritten
}
