// Package re implements the regular-expression (run-length) compressed pbit
// representation from Section 1.2 of the Tangled paper and the LCPC'20
// software-only PBP prototype it references.
//
// An AoB vector for E-way entanglement needs 2^E bits, which stops being
// practical somewhere around E = 16 — the paper's stated scaling limit for
// direct AoB hardware. The PBP model therefore represents higher degrees of
// entanglement as a run-length-encoded sequence of fixed-size AoB chunks:
// each chunk is a "symbol" of the regular expression, and repetition counts
// compress the (typically very low entropy) pattern. The software prototype
// used 4096-bit chunks; the Tangled/Qat hardware is designed so that its
// 65,536-bit AoB registers can serve as the symbols.
//
// Operations work directly on the compressed form: a channel-wise logic
// operation between two patterns walks their run lists in lockstep and
// combines at most one pair of distinct symbols per overlapping run, with a
// memo table so each distinct symbol pair is combined once. That is the
// "partially symbolic parallel execution" that gives PBP its (up to
// exponential) advantage over materializing full vectors.
//
// Limitation: this package implements flat run-length encoding, the
// simplest member of the paper's regular-expression family. A pattern whose
// period is close to the chunk size (e.g. Had(k) for k just above
// ChunkWays) expands to up to 2^(ways-k-1+1) alternating runs and gains
// nothing from compression; the LCPC'20 prototype's nested REs would
// compress those too. Callers layering above 16-way AoB hardware normally
// use chunkWays = 16 and high channel sets, where runs stay few.
package re

import (
	"encoding/binary"
	"fmt"
	"strings"

	"tangled/internal/aob"
)

// MaxWays bounds the total entanglement a Space may support. Channel
// numbers must fit in a uint64 with room for arithmetic.
const MaxWays = 62

// DefaultSymbolCap bounds the intern table of a new Space. At the hardware
// chunk size (16 ways, 8 KiB per symbol) the cap holds the table near 32 MiB
// worst case; adversarial op sequences that mint unbounded distinct chunks
// hit the cap and trigger a table reset instead of growing without limit.
const DefaultSymbolCap = 4096

// Space defines the geometry of a family of patterns — total entanglement
// ways and per-chunk ways — and owns the symbol intern table and the
// per-operation memo caches. Patterns from different Spaces cannot be
// combined. A Space is not safe for concurrent use; PBP execution, like the
// Qat coprocessor, is a single instruction stream.
//
// The intern table is bounded: once it reaches the symbol cap it is reset
// (dropping every memoized op result with it) and repopulated lazily. A
// reset invalidates pointer identity of symbols across old and new patterns
// — old patterns stay perfectly usable, adjacent runs just stop merging
// against newly interned equals — which is why Equal compares structurally
// rather than by symbol pointer.
type Space struct {
	ways      int // total entanglement degree E
	chunkWays int // each symbol covers 2^chunkWays channels

	symbols   map[string]*aob.Vector
	memo      map[memoKey]*aob.Vector
	symbolCap int // intern entries before reset; <= 0 means unbounded
	resets    uint64

	zeroSym *aob.Vector
	oneSym  *aob.Vector
}

type memoKey struct {
	op   byte // '&', '|', '^', '~' (b nil for '~')
	a, b *aob.Vector
}

// NewSpace creates a Space for ways-way entanglement built from chunks of
// 2^chunkWays channels. chunkWays must be in [0, aob.MaxWays] and must not
// exceed ways; ways must not exceed MaxWays.
func NewSpace(ways, chunkWays int) (*Space, error) {
	if chunkWays < 0 || chunkWays > aob.MaxWays {
		return nil, fmt.Errorf("re: chunkWays %d out of range [0,%d]", chunkWays, aob.MaxWays)
	}
	if ways < chunkWays {
		return nil, fmt.Errorf("re: ways %d smaller than chunkWays %d", ways, chunkWays)
	}
	if ways > MaxWays {
		return nil, fmt.Errorf("re: ways %d exceeds maximum %d", ways, MaxWays)
	}
	s := &Space{
		ways:      ways,
		chunkWays: chunkWays,
		symbols:   make(map[string]*aob.Vector),
		memo:      make(map[memoKey]*aob.Vector),
		symbolCap: DefaultSymbolCap,
	}
	s.zeroSym = s.intern(aob.New(chunkWays))
	s.oneSym = s.intern(aob.OneVector(chunkWays))
	return s, nil
}

// MustSpace is NewSpace for statically valid geometry; it panics on error.
func MustSpace(ways, chunkWays int) *Space {
	s, err := NewSpace(ways, chunkWays)
	if err != nil {
		panic(err)
	}
	return s
}

// Ways returns the total entanglement degree.
func (s *Space) Ways() int { return s.ways }

// ChunkWays returns the per-symbol entanglement degree.
func (s *Space) ChunkWays() int { return s.chunkWays }

// Channels returns the total channel count 2^ways.
func (s *Space) Channels() uint64 { return uint64(1) << uint(s.ways) }

// chunks returns how many symbol positions a pattern spans.
func (s *Space) chunks() uint64 { return uint64(1) << uint(s.ways-s.chunkWays) }

// chunkChannels returns channels per symbol.
func (s *Space) chunkChannels() uint64 { return uint64(1) << uint(s.chunkWays) }

// SymbolCount reports how many distinct chunk symbols have been interned —
// a direct measure of how much sharing compression achieves.
func (s *Space) SymbolCount() int { return len(s.symbols) }

// SymbolCap returns the intern-table bound; <= 0 means unbounded.
func (s *Space) SymbolCap() int { return s.symbolCap }

// SetSymbolCap changes the intern-table bound. n <= 0 removes the bound. A
// cap below the current table size takes effect at the next intern of an
// unseen symbol.
func (s *Space) SetSymbolCap(n int) { s.symbolCap = n }

// Resets counts how many times the intern table has been dropped at the
// cap — a compression-health signal: nonzero means the workload minted more
// distinct chunks than the table holds.
func (s *Space) Resets() uint64 { return s.resets }

// intern returns the canonical copy of sym, adopting it if unseen. Callers
// must not mutate a vector after interning it. When adopting would push the
// table past the cap, the table (and the op memo, whose keys are symbol
// pointers) is reset first and rebuilt lazily.
func (s *Space) intern(sym *aob.Vector) *aob.Vector {
	key := symKey(sym)
	if got, ok := s.symbols[key]; ok {
		return got
	}
	if s.symbolCap > 0 && len(s.symbols) >= s.symbolCap {
		s.resetSymbols()
	}
	s.symbols[key] = sym
	return sym
}

// resetSymbols drops the intern table and op memo, keeping the canonical
// zero/one symbols (when already minted) so Zero()/One() patterns stay
// pointer-shared with future ones.
func (s *Space) resetSymbols() {
	s.symbols = make(map[string]*aob.Vector, 2)
	s.memo = make(map[memoKey]*aob.Vector)
	s.resets++
	if s.zeroSym != nil {
		s.symbols[symKey(s.zeroSym)] = s.zeroSym
	}
	if s.oneSym != nil {
		s.symbols[symKey(s.oneSym)] = s.oneSym
	}
}

func symKey(v *aob.Vector) string {
	buf := make([]byte, 8*v.NumWords())
	for i := 0; i < v.NumWords(); i++ {
		binary.LittleEndian.PutUint64(buf[8*i:], v.Word(i))
	}
	return string(buf)
}

// run is one maximal repetition: count copies of sym.
type run struct {
	sym   *aob.Vector
	count uint64
}

// Pattern is a compressed pbit value of the Space's entanglement degree:
// the concatenation over runs of count repetitions of each symbol, least
// significant chunk first, always covering exactly 2^ways channels.
type Pattern struct {
	sp   *Space
	runs []run
}

// Zero returns the all-zeros pattern (one run).
func (s *Space) Zero() *Pattern {
	return &Pattern{sp: s, runs: []run{{s.zeroSym, s.chunks()}}}
}

// One returns the all-ones pattern (one run).
func (s *Space) One() *Pattern {
	return &Pattern{sp: s, runs: []run{{s.oneSym, s.chunks()}}}
}

// Had returns the k-th standard Hadamard pattern: channel e holds bit k of
// e. For k below chunkWays this is a single repeated symbol; above, it is
// alternating all-zero/all-one chunk runs — both maximally compressed.
func (s *Space) Had(k int) *Pattern {
	if k < 0 || k >= s.ways {
		panic(fmt.Sprintf("re: had index %d out of range [0,%d)", k, s.ways))
	}
	if k < s.chunkWays {
		sym := s.intern(aob.HadVector(s.chunkWays, k))
		return &Pattern{sp: s, runs: []run{{sym, s.chunks()}}}
	}
	runLen := uint64(1) << uint(k-s.chunkWays)
	pairs := s.chunks() / (2 * runLen)
	runs := make([]run, 0, 2*pairs)
	for i := uint64(0); i < pairs; i++ {
		runs = append(runs, run{s.zeroSym, runLen}, run{s.oneSym, runLen})
	}
	return &Pattern{sp: s, runs: runs}
}

// FromAoB wraps a full-width AoB vector (ways == chunkWays case) or chops a
// wider-than-chunk vector is not supported; the vector's ways must equal
// the space's chunkWays and the space's total chunks times chunk size give
// the repetition. Used mainly by tests to build arbitrary fixtures.
func (s *Space) FromAoB(v *aob.Vector) (*Pattern, error) {
	if v.Ways() != s.chunkWays {
		return nil, fmt.Errorf("re: vector ways %d != chunkWays %d", v.Ways(), s.chunkWays)
	}
	sym := s.intern(v.Clone())
	return &Pattern{sp: s, runs: []run{{sym, s.chunks()}}}, nil
}

// FromBits builds a pattern from an explicit channel-0-first bit slice of
// exactly 2^ways bits. Exponentially expensive by design; test helper.
func (s *Space) FromBits(bits []bool) (*Pattern, error) {
	if uint64(len(bits)) != s.Channels() {
		return nil, fmt.Errorf("re: got %d bits, want %d", len(bits), s.Channels())
	}
	cc := s.chunkChannels()
	var runs []run
	for ci := uint64(0); ci < s.chunks(); ci++ {
		v := aob.New(s.chunkWays)
		for off := uint64(0); off < cc; off++ {
			v.Set(off, bits[ci*cc+off])
		}
		sym := s.intern(v)
		if n := len(runs); n > 0 && runs[n-1].sym == sym {
			runs[n-1].count++
		} else {
			runs = append(runs, run{sym, 1})
		}
	}
	return &Pattern{sp: s, runs: runs}, nil
}

// FromDense compresses a full-width AoB vector into a pattern: the vector is
// chopped into 2^(ways-chunkWays) chunks, each interned, with equal adjacent
// chunks run-merged. Requires v.Ways() == the space's total ways, which in
// turn requires ways <= aob.MaxWays — the bridge the spill-to-dense backend
// crosses in both directions.
func (s *Space) FromDense(v *aob.Vector) (*Pattern, error) {
	if v.Ways() != s.ways {
		return nil, fmt.Errorf("re: vector ways %d != space ways %d", v.Ways(), s.ways)
	}
	cc := s.chunkChannels()
	cwords := int((cc + 63) / 64)
	var runs []run
	for ci := uint64(0); ci < s.chunks(); ci++ {
		c := aob.New(s.chunkWays)
		if s.chunkWays >= 6 {
			for w := 0; w < cwords; w++ {
				c.SetWord(w, v.Word(int(ci)*cwords+w))
			}
		} else {
			for off := uint64(0); off < cc; off++ {
				c.Set(off, v.Get(ci*cc+off))
			}
		}
		sym := s.intern(c)
		if n := len(runs); n > 0 && runs[n-1].sym == sym {
			runs[n-1].count++
		} else {
			runs = append(runs, run{sym, 1})
		}
	}
	return &Pattern{sp: s, runs: runs}, nil
}

// ToDense materializes the pattern as a full-width AoB vector — the spill
// direction of the RE backend. It fails when the space's total ways exceed
// aob.MaxWays (the whole reason the compressed form exists).
func (p *Pattern) ToDense() (*aob.Vector, error) {
	s := p.sp
	if s.ways > aob.MaxWays {
		return nil, fmt.Errorf("re: %d ways exceed dense maximum %d", s.ways, aob.MaxWays)
	}
	v := aob.New(s.ways)
	cc := s.chunkChannels()
	cwords := int((cc + 63) / 64)
	var ci uint64
	for _, r := range p.runs {
		for rep := uint64(0); rep < r.count; rep++ {
			if s.chunkWays >= 6 {
				for w := 0; w < cwords; w++ {
					v.SetWord(int(ci)*cwords+w, r.sym.Word(w))
				}
			} else {
				for off := uint64(0); off < cc; off++ {
					v.Set(ci*cc+off, r.sym.Get(off))
				}
			}
			ci++
		}
	}
	if ci != s.chunks() {
		return nil, fmt.Errorf("re: runs cover %d of %d chunks", ci, s.chunks())
	}
	return v, nil
}

// Space returns the pattern's owning Space.
func (p *Pattern) Space() *Space { return p.sp }

// NumRuns returns the number of maximal runs — the compressed length.
func (p *Pattern) NumRuns() int { return len(p.runs) }

// StorageBits estimates the compressed footprint in bits: per run, one
// chunk-symbol reference plus a repeat count (we charge the full chunk for
// each *distinct* symbol via the Space table, and 128 bits of run header).
// CompressionRatio compares against the uncompressed 2^ways bits.
func (p *Pattern) StorageBits() uint64 {
	seen := map[*aob.Vector]bool{}
	var bits uint64
	for _, r := range p.runs {
		bits += 128 // symbol reference + repeat count
		if !seen[r.sym] {
			seen[r.sym] = true
			bits += p.sp.chunkChannels()
		}
	}
	return bits
}

// CompressionRatio returns uncompressed/compressed size; higher is better.
func (p *Pattern) CompressionRatio() float64 {
	return float64(p.sp.Channels()) / float64(p.StorageBits())
}

func (p *Pattern) mustShareSpace(q *Pattern) {
	if p.sp != q.sp {
		panic("re: patterns from different spaces")
	}
}

// combine walks two run lists in lockstep applying the memoized chunk op.
func (s *Space) combine(op byte, a, b *Pattern, f func(x, y *aob.Vector) *aob.Vector) *Pattern {
	var out []run
	ai, bi := 0, 0
	aLeft, bLeft := uint64(0), uint64(0)
	if len(a.runs) > 0 {
		aLeft = a.runs[0].count
	}
	if len(b.runs) > 0 {
		bLeft = b.runs[0].count
	}
	for ai < len(a.runs) && bi < len(b.runs) {
		n := aLeft
		if bLeft < n {
			n = bLeft
		}
		sym := s.memoBinary(op, a.runs[ai].sym, b.runs[bi].sym, f)
		if m := len(out); m > 0 && out[m-1].sym == sym {
			out[m-1].count += n
		} else {
			out = append(out, run{sym, n})
		}
		aLeft -= n
		bLeft -= n
		if aLeft == 0 {
			ai++
			if ai < len(a.runs) {
				aLeft = a.runs[ai].count
			}
		}
		if bLeft == 0 {
			bi++
			if bi < len(b.runs) {
				bLeft = b.runs[bi].count
			}
		}
	}
	return &Pattern{sp: s, runs: out}
}

func (s *Space) memoBinary(op byte, x, y *aob.Vector, f func(x, y *aob.Vector) *aob.Vector) *aob.Vector {
	k := memoKey{op, x, y}
	if got, ok := s.memo[k]; ok {
		return got
	}
	sym := s.intern(f(x, y))
	s.memo[k] = sym
	// Symmetric ops hit from either operand order.
	s.memo[memoKey{op, y, x}] = sym
	return sym
}

// And returns p AND q channel-wise.
func (p *Pattern) And(q *Pattern) *Pattern {
	p.mustShareSpace(q)
	return p.sp.combine('&', p, q, func(x, y *aob.Vector) *aob.Vector {
		v := aob.New(p.sp.chunkWays)
		v.And(x, y)
		return v
	})
}

// Or returns p OR q channel-wise.
func (p *Pattern) Or(q *Pattern) *Pattern {
	p.mustShareSpace(q)
	return p.sp.combine('|', p, q, func(x, y *aob.Vector) *aob.Vector {
		v := aob.New(p.sp.chunkWays)
		v.Or(x, y)
		return v
	})
}

// Xor returns p XOR q channel-wise.
func (p *Pattern) Xor(q *Pattern) *Pattern {
	p.mustShareSpace(q)
	return p.sp.combine('^', p, q, func(x, y *aob.Vector) *aob.Vector {
		v := aob.New(p.sp.chunkWays)
		v.Xor(x, y)
		return v
	})
}

// Not returns the channel-wise complement of p.
func (p *Pattern) Not() *Pattern {
	s := p.sp
	out := make([]run, 0, len(p.runs))
	for _, r := range p.runs {
		k := memoKey{'~', r.sym, nil}
		sym, ok := s.memo[k]
		if !ok {
			v := r.sym.Clone()
			v.Not()
			sym = s.intern(v)
			s.memo[k] = sym
		}
		if m := len(out); m > 0 && out[m-1].sym == sym {
			out[m-1].count += r.count
		} else {
			out = append(out, run{sym, r.count})
		}
	}
	return &Pattern{sp: s, runs: out}
}

// Get returns the bit at channel ch (modulo the channel count).
func (p *Pattern) Get(ch uint64) bool {
	ch &= p.sp.Channels() - 1
	ci := ch >> uint(p.sp.chunkWays)
	off := ch & (p.sp.chunkChannels() - 1)
	for _, r := range p.runs {
		if ci < r.count {
			return r.sym.Get(off)
		}
		ci -= r.count
	}
	panic("re: runs do not cover pattern")
}

// Meas returns Get as 0/1, matching the Qat meas instruction.
func (p *Pattern) Meas(ch uint64) uint64 {
	if p.Get(ch) {
		return 1
	}
	return 0
}

// Next returns the lowest channel strictly greater than ch holding a 1, or
// 0 if none — the Qat next instruction lifted to the compressed form. It
// runs in O(runs) time plus one chunk probe, never decompressing.
func (p *Pattern) Next(ch uint64) uint64 {
	ch &= p.sp.Channels() - 1
	cw := uint(p.sp.chunkWays)
	cc := p.sp.chunkChannels()
	targetChunk := (ch + 1) >> cw
	startOff := (ch + 1) & (cc - 1)
	var base uint64 // global chunk index at start of current run
	for _, r := range p.runs {
		end := base + r.count
		if end <= targetChunk {
			base = end
			continue
		}
		// The run overlaps chunk indices [max(base,targetChunk), end).
		first := base
		if targetChunk > first {
			first = targetChunk
		}
		// Within the first candidate chunk, a partial search may apply.
		off := uint64(0)
		if first == targetChunk {
			off = startOff
		}
		if off != 0 {
			// Channels >= off within chunk `first`.
			if r.sym.Get(off) {
				return first<<cw + off
			}
			if n := r.sym.Next(off); n != 0 {
				return first<<cw + n
			}
			first++
			if first >= end {
				base = end
				continue
			}
		}
		// Whole chunks from `first`: if the symbol has any 1 its first
		// position answers immediately.
		if r.sym.Get(0) {
			return first << cw
		}
		if n := r.sym.Next(0); n != 0 {
			return first<<cw + n
		}
		base = end
	}
	return 0
}

// PopAfter counts 1 bits in channels strictly greater than ch.
func (p *Pattern) PopAfter(ch uint64) uint64 {
	ch &= p.sp.Channels() - 1
	cw := uint(p.sp.chunkWays)
	cc := p.sp.chunkChannels()
	targetChunk := (ch + 1) >> cw
	startOff := (ch + 1) & (cc - 1)
	var base, total uint64
	for _, r := range p.runs {
		end := base + r.count
		if end <= targetChunk {
			base = end
			continue
		}
		first := base
		if targetChunk > first {
			first = targetChunk
		}
		whole := end - first
		if first == targetChunk && startOff != 0 {
			// Partial chunk: PopAfter(startOff-1) counts offsets >= startOff.
			total += r.sym.PopAfter(startOff - 1)
			whole--
		}
		total += whole * r.sym.Pop()
		base = end
	}
	return total
}

// Pop returns the total count of 1 channels, computed per-run — O(runs)
// instead of O(2^ways).
func (p *Pattern) Pop() uint64 {
	var total uint64
	for _, r := range p.runs {
		total += r.count * r.sym.Pop()
	}
	return total
}

// Any reports whether any channel holds a 1.
func (p *Pattern) Any() bool {
	for _, r := range p.runs {
		if r.sym.Pop() != 0 {
			return true
		}
	}
	return false
}

// All reports whether every channel holds a 1.
func (p *Pattern) All() bool {
	for _, r := range p.runs {
		if r.sym.Pop() != r.sym.Channels() {
			return false
		}
	}
	return true
}

// Equal reports channel-wise equality. It walks the two run lists in
// lockstep, tolerating differing run boundaries and comparing symbols by
// content (pointer identity is only a fast path): intern-table resets mean
// two equal patterns may not share symbol pointers or even run splits.
func (p *Pattern) Equal(q *Pattern) bool {
	if p.sp != q.sp {
		return false
	}
	pi, qi := 0, 0
	var pLeft, qLeft uint64
	for {
		if pLeft == 0 {
			if pi == len(p.runs) {
				return qi == len(q.runs) && qLeft == 0
			}
			pLeft = p.runs[pi].count
			pi++
		}
		if qLeft == 0 {
			if qi == len(q.runs) {
				return false
			}
			qLeft = q.runs[qi].count
			qi++
		}
		ps, qs := p.runs[pi-1].sym, q.runs[qi-1].sym
		if ps != qs && !ps.Equal(qs) {
			return false
		}
		n := pLeft
		if qLeft < n {
			n = qLeft
		}
		pLeft -= n
		qLeft -= n
	}
}

// String renders the run structure, e.g. "(0^2)(1^2)" for 0011 with 1-way
// chunks — echoing the paper's 0²1² notation.
func (p *Pattern) String() string {
	var b strings.Builder
	for _, r := range p.runs {
		sym := r.sym.String()
		if r.sym.Channels() > 16 {
			sym = fmt.Sprintf("S%p", r.sym)
		}
		fmt.Fprintf(&b, "(%s^%d)", sym, r.count)
	}
	return b.String()
}
