package re

import (
	"math/rand"
	"testing"

	"tangled/internal/aob"
)

// Edge-case coverage the main suites miss: degenerate geometry (single
// chunk, single channel), the wrap boundary of the Next/PopAfter reductions,
// non-power-of-two run layouts through the FromBits/FromAoB constructors,
// the dense bridge (FromDense/ToDense), and the bounded intern table. Every
// compressed result is mirrored against the dense AoB reference.

// densePattern materializes p as an aob.Vector via the test-side bit path,
// independent of Pattern.ToDense, so the two can check each other.
func densePattern(t *testing.T, p *Pattern) *aob.Vector {
	t.Helper()
	if p.sp.Ways() > aob.MaxWays {
		t.Fatalf("densePattern: %d ways not materializable", p.sp.Ways())
	}
	v := aob.New(p.sp.Ways())
	for ch := uint64(0); ch < p.sp.Channels(); ch++ {
		v.Set(ch, p.Get(ch))
	}
	return v
}

func TestEdgeGeometries(t *testing.T) {
	cases := []struct {
		name            string
		ways, chunkWays int
	}{
		{"single-channel", 0, 0},
		{"one-way-chunk0", 1, 0},
		{"chunk-equals-ways-small", 3, 3},
		{"chunk-equals-ways-word", 6, 6},
		{"chunk-equals-ways-multiword", 8, 8},
		{"subword-chunks", 7, 3},
		{"word-chunks", 9, 6},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			s := MustSpace(tc.ways, tc.chunkWays)
			r := rand.New(rand.NewSource(int64(tc.ways)*31 + int64(tc.chunkWays)))
			for trial := 0; trial < 20; trial++ {
				bits := randBits(r, s.Channels(), 0.5)
				p, err := s.FromBits(bits)
				if err != nil {
					t.Fatal(err)
				}
				ref := densePattern(t, p)
				for ch := uint64(0); ch < s.Channels(); ch++ {
					if p.Get(ch) != (bits[ch]) {
						t.Fatalf("get(%d) mismatch", ch)
					}
					if p.Next(ch) != ref.Next(ch) {
						t.Fatalf("next(%d): re %d dense %d", ch, p.Next(ch), ref.Next(ch))
					}
					if p.PopAfter(ch) != ref.PopAfter(ch) {
						t.Fatalf("popAfter(%d): re %d dense %d", ch, p.PopAfter(ch), ref.PopAfter(ch))
					}
				}
				if p.Pop() != ref.Pop() {
					t.Fatalf("pop: re %d dense %d", p.Pop(), ref.Pop())
				}
				if p.Any() != ref.Any() || p.All() != ref.All() {
					t.Fatalf("any/all mismatch")
				}
			}
		})
	}
}

// TestWrapBoundary pins the semantics at the very top of the channel space:
// probing from the last channel must wrap to "nothing after".
func TestWrapBoundary(t *testing.T) {
	for _, geo := range [][2]int{{0, 0}, {4, 2}, {8, 6}, {10, 4}} {
		s := MustSpace(geo[0], geo[1])
		p := s.One()
		lastCh := s.Channels() - 1
		if got := p.Next(lastCh); got != 0 {
			t.Fatalf("ways=%d next(last) = %d, want 0", geo[0], got)
		}
		if got := p.PopAfter(lastCh); got != 0 {
			t.Fatalf("ways=%d popAfter(last) = %d, want 0", geo[0], got)
		}
		// Modulo semantics: probing at Channels() is probing at 0.
		dense := densePattern(t, p)
		if p.Next(s.Channels()) != dense.Next(0) {
			t.Fatalf("ways=%d next wrap-probe mismatch", geo[0])
		}
		if p.PopAfter(s.Channels()) != dense.PopAfter(0) {
			t.Fatalf("ways=%d popAfter wrap-probe mismatch", geo[0])
		}
	}
}

// TestNonPowerOfTwoRunLayouts pushes patterns whose run counts are 3, 5, 7,
// ... through FromBits and checks the layout reads back exactly.
func TestNonPowerOfTwoRunLayouts(t *testing.T) {
	s := MustSpace(6, 2) // 16 chunks of 4 channels
	layouts := [][]uint64{
		{3, 5, 7, 1},
		{1, 1, 1, 13},
		{15, 1},
		{5, 6, 5},
	}
	for _, counts := range layouts {
		var total uint64
		for _, c := range counts {
			total += c
		}
		if total != s.chunks() {
			t.Fatalf("layout %v covers %d chunks, want %d", counts, total, s.chunks())
		}
		// Alternate a 1010 chunk and a 0110 chunk so adjacent runs differ.
		bits := make([]bool, s.Channels())
		cc := s.chunkChannels()
		chunkBits := [2][]bool{{false, true, false, true}, {false, true, true, false}}
		ci := uint64(0)
		for ri, c := range counts {
			for rep := uint64(0); rep < c; rep++ {
				for off := uint64(0); off < cc; off++ {
					bits[ci*cc+off] = chunkBits[ri%2][off]
				}
				ci++
			}
		}
		p, err := s.FromBits(bits)
		if err != nil {
			t.Fatal(err)
		}
		if p.NumRuns() != len(counts) {
			t.Fatalf("layout %v: got %d runs (%s)", counts, p.NumRuns(), p)
		}
		for ch, want := range bits {
			if p.Get(uint64(ch)) != want {
				t.Fatalf("layout %v: get(%d) mismatch", counts, ch)
			}
		}
		ref := densePattern(t, p)
		for probe := uint64(0); probe < s.Channels(); probe += 7 {
			if p.Next(probe) != ref.Next(probe) || p.PopAfter(probe) != ref.PopAfter(probe) {
				t.Fatalf("layout %v: reduction mismatch at %d", counts, probe)
			}
		}
	}
}

func TestFromAoBChunkEqualsWays(t *testing.T) {
	s := MustSpace(7, 7) // single chunk: FromAoB is the whole pattern
	r := rand.New(rand.NewSource(77))
	for trial := 0; trial < 10; trial++ {
		v := aob.New(7)
		for i := 0; i < v.NumWords(); i++ {
			v.SetWord(i, r.Uint64())
		}
		p, err := s.FromAoB(v)
		if err != nil {
			t.Fatal(err)
		}
		if p.NumRuns() != 1 {
			t.Fatalf("single-chunk pattern has %d runs", p.NumRuns())
		}
		back, err := p.ToDense()
		if err != nil {
			t.Fatal(err)
		}
		if !back.Equal(v) {
			t.Fatalf("round trip lost bits: %s vs %s", back, v)
		}
	}
}

func TestFromDenseToDenseRoundTrip(t *testing.T) {
	for _, geo := range [][2]int{{0, 0}, {4, 4}, {6, 2}, {8, 6}, {10, 6}, {12, 8}} {
		s := MustSpace(geo[0], geo[1])
		r := rand.New(rand.NewSource(int64(geo[0])*131 + int64(geo[1])))
		for trial := 0; trial < 10; trial++ {
			v := aob.New(geo[0])
			for i := 0; i < v.NumWords(); i++ {
				v.SetWord(i, r.Uint64())
			}
			p, err := s.FromDense(v)
			if err != nil {
				t.Fatal(err)
			}
			if !densePattern(t, p).Equal(v) {
				t.Fatalf("ways=%d FromDense changed contents", geo[0])
			}
			back, err := p.ToDense()
			if err != nil {
				t.Fatal(err)
			}
			if !back.Equal(v) {
				t.Fatalf("ways=%d round trip lost bits", geo[0])
			}
		}
	}
}

func TestFromDenseWaysMismatch(t *testing.T) {
	s := MustSpace(8, 4)
	if _, err := s.FromDense(aob.New(6)); err == nil {
		t.Fatal("FromDense accepted mismatched ways")
	}
}

// TestSymbolCapBoundsIntern is the satellite requirement: a long random-op
// sequence must not grow SymbolCount past the cap.
func TestSymbolCapBoundsIntern(t *testing.T) {
	s := MustSpace(10, 4)
	const cap = 24
	s.SetSymbolCap(cap)
	if got := s.SymbolCap(); got != cap {
		t.Fatalf("SymbolCap = %d, want %d", got, cap)
	}
	r := rand.New(rand.NewSource(4242))
	p, err := s.FromBits(randBits(r, s.Channels(), 0.5))
	if err != nil {
		t.Fatal(err)
	}
	for step := 0; step < 2000; step++ {
		q, err := s.FromBits(randBits(r, s.Channels(), 0.5))
		if err != nil {
			t.Fatal(err)
		}
		switch step % 4 {
		case 0:
			p = p.And(q)
		case 1:
			p = p.Or(q)
		case 2:
			p = p.Xor(q)
		case 3:
			p = p.Not()
		}
		if got := s.SymbolCount(); got > cap {
			t.Fatalf("step %d: SymbolCount %d exceeds cap %d", step, got, cap)
		}
	}
	if s.Resets() == 0 {
		t.Fatal("random-op sequence never hit the cap; test is vacuous")
	}
	// The pattern built across resets still reads back coherently.
	if p.Pop() > s.Channels() {
		t.Fatal("impossible pop after resets")
	}
}

// TestEqualAcrossResets proves structural equality survives intern resets:
// two equal patterns minted on either side of a reset no longer share symbol
// pointers, yet must still compare equal.
func TestEqualAcrossResets(t *testing.T) {
	s := MustSpace(8, 4)
	r := rand.New(rand.NewSource(7))
	bits := randBits(r, s.Channels(), 0.5)
	before, err := s.FromBits(bits)
	if err != nil {
		t.Fatal(err)
	}
	s.SetSymbolCap(4)
	// Churn the table until it resets at least twice.
	for i := 0; s.Resets() < 2; i++ {
		if _, err := s.FromBits(randBits(r, s.Channels(), 0.5)); err != nil {
			t.Fatal(err)
		}
		if i > 10000 {
			t.Fatal("cap never triggered")
		}
	}
	after, err := s.FromBits(bits)
	if err != nil {
		t.Fatal(err)
	}
	if !before.Equal(after) || !after.Equal(before) {
		t.Fatal("structurally equal patterns compare unequal across an intern reset")
	}
	// And a genuinely different pattern still compares unequal.
	bits[0] = !bits[0]
	other, err := s.FromBits(bits)
	if err != nil {
		t.Fatal(err)
	}
	if before.Equal(other) {
		t.Fatal("unequal patterns compare equal")
	}
}
