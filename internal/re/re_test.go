package re

import (
	"math/rand"
	"testing"

	"tangled/internal/aob"
)

// refBits expands a pattern to explicit bits for oracle comparisons. Only
// usable for small ways.
func refBits(p *Pattern) []bool {
	n := p.sp.Channels()
	out := make([]bool, n)
	for ch := uint64(0); ch < n; ch++ {
		out[ch] = p.Get(ch)
	}
	return out
}

func randBits(r *rand.Rand, n uint64, density float64) []bool {
	out := make([]bool, n)
	for i := range out {
		out[i] = r.Float64() < density
	}
	return out
}

func TestNewSpaceValidation(t *testing.T) {
	if _, err := NewSpace(10, -1); err == nil {
		t.Error("negative chunkWays accepted")
	}
	if _, err := NewSpace(10, 17); err == nil {
		t.Error("chunkWays > aob.MaxWays accepted")
	}
	if _, err := NewSpace(3, 4); err == nil {
		t.Error("ways < chunkWays accepted")
	}
	if _, err := NewSpace(63, 4); err == nil {
		t.Error("ways > MaxWays accepted")
	}
	if _, err := NewSpace(20, 8); err != nil {
		t.Errorf("valid geometry rejected: %v", err)
	}
}

func TestZeroOnePatterns(t *testing.T) {
	s := MustSpace(20, 8)
	z, o := s.Zero(), s.One()
	if z.Any() || !o.All() || !o.Any() || z.All() {
		t.Fatal("zero/one reductions wrong")
	}
	if z.NumRuns() != 1 || o.NumRuns() != 1 {
		t.Fatal("constants must be single runs")
	}
	if z.Pop() != 0 || o.Pop() != s.Channels() {
		t.Fatal("pop of constants wrong")
	}
}

// TestPaperRunLengthExamples reproduces the Section 1.2 examples:
// {0,1,0,1} is (01)^2 and {0,0,1,1} is 0^2 1^2 under 1-bit chunks.
func TestPaperRunLengthExamples(t *testing.T) {
	s := MustSpace(2, 1) // 4 channels, 2-channel chunks
	h0 := s.Had(0)       // 0101 -> chunk "01" repeated twice
	if h0.NumRuns() != 1 || h0.String() != "(01^2)" {
		t.Errorf("had0 = %s (%d runs), want (01^2)", h0, h0.NumRuns())
	}
	h1 := s.Had(1) // 0011 -> chunk 00 then chunk 11
	if h1.NumRuns() != 2 || h1.String() != "(00^1)(11^1)" {
		t.Errorf("had1 = %s (%d runs), want (00^1)(11^1)", h1, h1.NumRuns())
	}
}

func TestHadMatchesAoB(t *testing.T) {
	for _, geom := range [][2]int{{8, 4}, {10, 6}, {12, 8}, {9, 3}} {
		ways, cw := geom[0], geom[1]
		s := MustSpace(ways, cw)
		for k := 0; k < ways; k++ {
			p := s.Had(k)
			want := aob.HadVector(ways, k)
			for ch := uint64(0); ch < s.Channels(); ch++ {
				if p.Get(ch) != want.Get(ch) {
					t.Fatalf("ways=%d cw=%d k=%d ch=%d mismatch", ways, cw, k, ch)
				}
			}
		}
	}
}

func TestHadCompressionIsMaximal(t *testing.T) {
	// A Hadamard pattern at any k compresses to O(2^(ways-k)) runs; for the
	// top channel-set it is exactly 2 runs regardless of total ways.
	s := MustSpace(32, 12)
	top := s.Had(31)
	if top.NumRuns() != 2 {
		t.Errorf("had(31) has %d runs, want 2", top.NumRuns())
	}
	low := s.Had(3)
	if low.NumRuns() != 1 {
		t.Errorf("had(3) has %d runs, want 1", low.NumRuns())
	}
	// 2^32 bits collapse to 2 run headers + 2 distinct 4096-bit chunks.
	if r := top.CompressionRatio(); r < 1e5 {
		t.Errorf("32-way had(31) compression ratio %g, want >1e5", r)
	}
}

func TestLogicOpsAgainstAoB(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	s := MustSpace(10, 4)
	for trial := 0; trial < 10; trial++ {
		ab := randBits(r, s.Channels(), 0.3)
		bb := randBits(r, s.Channels(), 0.7)
		pa, err := s.FromBits(ab)
		if err != nil {
			t.Fatal(err)
		}
		pb, err := s.FromBits(bb)
		if err != nil {
			t.Fatal(err)
		}
		and, or, xor, not := pa.And(pb), pa.Or(pb), pa.Xor(pb), pa.Not()
		for ch := uint64(0); ch < s.Channels(); ch++ {
			if and.Get(ch) != (ab[ch] && bb[ch]) {
				t.Fatalf("and ch %d", ch)
			}
			if or.Get(ch) != (ab[ch] || bb[ch]) {
				t.Fatalf("or ch %d", ch)
			}
			if xor.Get(ch) != (ab[ch] != bb[ch]) {
				t.Fatalf("xor ch %d", ch)
			}
			if not.Get(ch) == ab[ch] {
				t.Fatalf("not ch %d", ch)
			}
		}
	}
}

func TestNextMatchesReference(t *testing.T) {
	r := rand.New(rand.NewSource(6))
	s := MustSpace(9, 3)
	for trial := 0; trial < 10; trial++ {
		density := []float64{0, 0.01, 0.5, 1}[trial%4]
		bits := randBits(r, s.Channels(), density)
		p, err := s.FromBits(bits)
		if err != nil {
			t.Fatal(err)
		}
		for ch := uint64(0); ch < s.Channels(); ch++ {
			var want uint64
			for c := ch + 1; c < s.Channels(); c++ {
				if bits[c] {
					want = c
					break
				}
			}
			if got := p.Next(ch); got != want {
				t.Fatalf("density %g: Next(%d) = %d, want %d", density, ch, got, want)
			}
		}
	}
}

func TestPopAfterMatchesReference(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	s := MustSpace(9, 4)
	bits := randBits(r, s.Channels(), 0.4)
	p, err := s.FromBits(bits)
	if err != nil {
		t.Fatal(err)
	}
	for ch := uint64(0); ch < s.Channels(); ch++ {
		var want uint64
		for c := ch + 1; c < s.Channels(); c++ {
			if bits[c] {
				want++
			}
		}
		if got := p.PopAfter(ch); got != want {
			t.Fatalf("PopAfter(%d) = %d, want %d", ch, got, want)
		}
	}
	if p.Pop() != p.PopAfter(0)+p.Meas(0) {
		t.Fatal("pop split identity broken")
	}
}

func TestHighEntanglementArithmetic(t *testing.T) {
	// 40-way entanglement: 2^40 channels, impossible as AoB (128 GB), easy
	// as RE. XOR of two Hadamard patterns has a predictable structure.
	s := MustSpace(40, 12)
	a := s.Had(39)
	b := s.Had(38)
	x := a.Xor(b)
	// Channel e: bit39(e) ^ bit38(e). Pattern of quarters: 0,1,1,0.
	q := s.Channels() / 4
	for _, probe := range []struct {
		ch   uint64
		want bool
	}{
		{0, false}, {q, true}, {2 * q, true}, {3 * q, false},
		{q - 1, false}, {2*q - 1, true}, {4*q - 1, false},
	} {
		if x.Get(probe.ch) != probe.want {
			t.Errorf("xor at %d = %v, want %v", probe.ch, x.Get(probe.ch), probe.want)
		}
	}
	if x.Pop() != s.Channels()/2 {
		t.Errorf("xor pop = %d, want half of %d", x.Pop(), s.Channels())
	}
	if x.NumRuns() > 4 {
		t.Errorf("xor of two hads has %d runs, want <=4", x.NumRuns())
	}
}

func TestMemoizationSharing(t *testing.T) {
	s := MustSpace(30, 10)
	a, b := s.Had(29), s.Had(5)
	before := s.SymbolCount()
	c1 := a.And(b)
	mid := s.SymbolCount()
	c2 := a.And(b)
	after := s.SymbolCount()
	if after != mid {
		t.Error("repeated op created new symbols despite memo")
	}
	if !c1.Equal(c2) {
		t.Error("memoized op not deterministic")
	}
	if mid-before > 2 {
		t.Errorf("and of two hads interned %d new symbols, want <=2", mid-before)
	}
}

func TestEqualSemantics(t *testing.T) {
	s := MustSpace(12, 4)
	if !s.Had(7).Equal(s.Had(7)) {
		t.Error("identical patterns unequal")
	}
	if s.Had(7).Equal(s.Had(6)) {
		t.Error("different patterns equal")
	}
	s2 := MustSpace(12, 4)
	if s.Had(7).Equal(s2.Had(7)) {
		t.Error("cross-space patterns must be unequal")
	}
}

func TestNotInvolution(t *testing.T) {
	s := MustSpace(16, 8)
	p := s.Had(13).Xor(s.Had(2))
	if !p.Not().Not().Equal(p) {
		t.Error("not∘not != identity")
	}
}

func TestDeMorganOnPatterns(t *testing.T) {
	s := MustSpace(24, 8)
	a, b := s.Had(20), s.Had(7)
	lhs := a.And(b).Not()
	rhs := a.Not().Or(b.Not())
	if !lhs.Equal(rhs) {
		t.Error("De Morgan fails on compressed patterns")
	}
}

func TestRunCoalescing(t *testing.T) {
	// ANDing a pattern with zero collapses to a single zero run no matter
	// how fragmented the operand was.
	s := MustSpace(20, 6)
	frag := s.Had(19).Xor(s.Had(18)).Xor(s.Had(17))
	z := frag.And(s.Zero())
	if z.NumRuns() != 1 {
		t.Errorf("x AND 0 has %d runs, want 1", z.NumRuns())
	}
	if !z.Equal(s.Zero()) {
		t.Error("x AND 0 != 0")
	}
}

func TestFromAoBRoundTrip(t *testing.T) {
	s := MustSpace(16, 8)
	v := aob.HadVector(8, 3)
	p, err := s.FromAoB(v)
	if err != nil {
		t.Fatal(err)
	}
	for ch := uint64(0); ch < s.Channels(); ch++ {
		if p.Get(ch) != v.Get(ch&255) {
			t.Fatalf("tiling mismatch at %d", ch)
		}
	}
	if _, err := s.FromAoB(aob.New(9)); err == nil {
		t.Error("wrong-size vector accepted")
	}
}

func TestMeasNonDestructiveOnPattern(t *testing.T) {
	s := MustSpace(24, 12)
	p := s.Had(23)
	for i := 0; i < 100; i++ {
		p.Meas(uint64(i) * 123456789 % s.Channels())
	}
	if !p.Equal(s.Had(23)) {
		t.Error("measurement disturbed compressed pattern")
	}
}

func BenchmarkS12REvsAoB_RE(b *testing.B) {
	// 16-way problem: logic op on the compressed form.
	s := MustSpace(16, 12)
	x, y := s.Had(15), s.Had(3)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = x.And(y)
	}
}

func BenchmarkS12REvsAoB_AoB(b *testing.B) {
	// The same op on the uncompressed 65,536-bit AoB form.
	x, y := aob.HadVector(16, 15), aob.HadVector(16, 3)
	d := aob.New(16)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		d.And(x, y)
	}
}

func BenchmarkHighEntanglementAnd(b *testing.B) {
	s := MustSpace(40, 12)
	x, y := s.Had(39), s.Had(20)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = x.And(y)
	}
}

func BenchmarkPatternNext(b *testing.B) {
	s := MustSpace(32, 12)
	p := s.Had(31)
	for i := 0; i < b.N; i++ {
		_ = p.Next(uint64(i))
	}
}
