package re

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// genPattern composes Hadamards into a pseudo-random compressed pattern.
// Channel sets stay high (>= chunkWays) so run counts stay small.
func genPattern(s *Space, seed uint64) *Pattern {
	r := rand.New(rand.NewSource(int64(seed)))
	pick := func() int { return s.ChunkWays() + r.Intn(s.Ways()-s.ChunkWays()) }
	p := s.Had(pick())
	for i := 0; i < 2+r.Intn(3); i++ {
		q := s.Had(pick())
		switch r.Intn(3) {
		case 0:
			p = p.And(q)
		case 1:
			p = p.Or(q)
		default:
			p = p.Xor(q)
		}
	}
	return p
}

func TestBooleanAlgebraProperties(t *testing.T) {
	s := MustSpace(20, 8)
	f := func(sa, sb uint64) bool {
		a, b := genPattern(s, sa), genPattern(s, sb)
		if !a.And(b).Equal(b.And(a)) || !a.Or(b).Equal(b.Or(a)) {
			return false
		}
		if !a.Or(a.And(b)).Equal(a) { // absorption
			return false
		}
		if a.And(a.Not()).Any() || !a.Or(a.Not()).All() { // complement
			return false
		}
		// Inclusion-exclusion on pop.
		if a.Or(b).Pop()+a.And(b).Pop() != a.Pop()+b.Pop() {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}

func TestFlatVsTreeAgreementProperty(t *testing.T) {
	// Flat RLE and the exhaustive bit model agree on derived quantities.
	s := MustSpace(12, 4)
	f := func(seed uint64) bool {
		p := genPattern(s, seed)
		var pop uint64
		for ch := uint64(0); ch < s.Channels(); ch++ {
			if p.Get(ch) {
				pop++
			}
		}
		return pop == p.Pop()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
