package compile

import (
	"testing"

	"tangled/internal/core"
	"tangled/internal/cpu"
)

// TestLtIntMatchesModel compiles a comparator over two Hadamard operands
// and diffs every channel against the core model.
func TestLtIntMatchesModel(t *testing.T) {
	for _, opts := range []Options{{}, {Reuse: true}, {Reversible: true, Reuse: true}} {
		c := New(8, opts)
		a := c.HInt(4, 0x0F)
		b := c.HInt(4, 0xF0)
		lt := c.LtInt(a, b)
		if c.Err() != nil {
			t.Fatal(c.Err())
		}
		reg := c.Reg(&lt)
		m := runAsm(t, c.Asm()+"lex $0,0\nsys\n", 8, opts.ConstantRegs)
		for ch := uint64(0); ch < 256; ch++ {
			want := ch&15 < ch>>4
			if m.Qat.Reg(reg).Get(ch) != want {
				t.Fatalf("opts %+v ch %d: lt(%d,%d) wrong", opts, ch, ch&15, ch>>4)
			}
		}
	}
}

// TestLtIntAgainstConstant covers the folded-constant comparator path.
func TestLtIntAgainstConstant(t *testing.T) {
	c := New(8, Options{Reuse: true})
	a := c.HInt(8, 0xFF)
	k := c.MkInt(8, 100)
	lt := c.LtInt(a, k)
	reg := c.Reg(&lt)
	m := runAsm(t, c.Asm()+"lex $0,0\nsys\n", 8, false)
	for ch := uint64(0); ch < 256; ch++ {
		if m.Qat.Reg(reg).Get(ch) != (ch < 100) {
			t.Fatalf("ch %d", ch)
		}
	}
}

// TestMuxIntMatchesModel checks the word-level multiplexer.
func TestMuxIntMatchesModel(t *testing.T) {
	c := New(8, Options{Reuse: true})
	a := c.MkInt(4, 3)
	b := c.MkInt(4, 12)
	sel := c.Had(2)
	mux := c.MuxInt(a, b, sel)
	regs := make([]uint8, mux.Width())
	for i := range mux.Bits {
		regs[i] = c.Reg(&mux.Bits[i])
	}
	m := runAsm(t, c.Asm()+"lex $0,0\nsys\n", 8, false)
	for ch := uint64(0); ch < 256; ch++ {
		want := uint64(3)
		if ch>>2&1 == 1 {
			want = 12
		}
		var got uint64
		for i, r := range regs {
			got |= m.Qat.Reg(r).Meas(ch) << uint(i)
		}
		if got != want {
			t.Fatalf("ch %d: %d want %d", ch, got, want)
		}
	}
}

// TestSubsetSumProgramMatchesModel runs the compiled subset-sum on the
// functional machine and cross-checks counts and first solution against
// the core software model.
func TestSubsetSumProgramMatchesModel(t *testing.T) {
	weights := []uint64{3, 5, 7, 11, 13, 2, 9, 6}
	const target = 20
	res, err := SubsetSumProgram(weights, target, 8, Options{Reuse: true})
	if err != nil {
		t.Fatal(err)
	}
	m := runAsm(t, res.Asm, 8, false)

	// Core-model reference.
	mm := core.NewAoB(8)
	acc := core.Mk(mm, 7, 0)
	zero := core.Mk(mm, 7, 0)
	for i, w := range weights {
		acc = zero.Mux(core.Mk(mm, 7, w), mm.Had(i)).Add(acc).Truncate(7)
	}
	ind := acc.Eq(core.Mk(mm, 7, target))
	wantCount := mm.Pop(ind)
	wantFirst := mm.Next(ind, 0)

	if uint64(m.Regs[2]) != wantCount {
		t.Errorf("count $2 = %d, want %d", m.Regs[2], wantCount)
	}
	if uint64(m.Regs[1]) != wantFirst {
		t.Errorf("first $1 = %d, want %d", m.Regs[1], wantFirst)
	}
	// Verify the first solution actually sums to target.
	var sum uint64
	for i, w := range weights {
		if m.Regs[1]>>uint(i)&1 == 1 {
			sum += w
		}
	}
	if sum != target {
		t.Errorf("reported subset sums to %d", sum)
	}
	t.Logf("subset-sum: %d qat insts, %d regs, %d solutions, first %#x",
		res.QatInsts, res.RegsUsed, m.Regs[2], m.Regs[1])
}

// TestSubsetSumNoSolution: an unreachable target yields zero count.
func TestSubsetSumNoSolution(t *testing.T) {
	res, err := SubsetSumProgram([]uint64{2, 4, 8, 16}, 5, 8, Options{Reuse: true})
	if err != nil {
		t.Fatal(err)
	}
	m := runAsm(t, res.Asm, 8, false)
	if m.Regs[2] != 0 || m.Regs[1] != 0 || m.Regs[4] != 0 {
		t.Errorf("phantom solutions: count=%d first=%d empty=%d",
			m.Regs[2], m.Regs[1], m.Regs[4])
	}
}

// TestSubsetSumEmptySubset: target 0 is solved by channel 0 (the empty
// subset), visible in $4 via meas.
func TestSubsetSumEmptySubset(t *testing.T) {
	res, err := SubsetSumProgram([]uint64{1, 2, 3}, 0, 8, Options{Reuse: true})
	if err != nil {
		t.Fatal(err)
	}
	m := runAsm(t, res.Asm, 8, false)
	if m.Regs[4] != 1 {
		t.Error("empty subset not detected at channel 0")
	}
}

// TestSubsetSumHardwareScale runs a full 16-item instance on the 16-way
// configuration — exactly one Qat register of 65,536 channels per pbit.
func TestSubsetSumHardwareScale(t *testing.T) {
	weights := []uint64{3, 34, 4, 12, 5, 2, 17, 29, 8, 21, 6, 11, 41, 9, 14, 7}
	res, err := SubsetSumProgram(weights, 100, 16, Options{Reuse: true})
	if err != nil {
		t.Fatal(err)
	}
	var m *cpu.Machine = runAsm(t, res.Asm, 16, false)
	if m.Regs[2] != 656 { // independently verified by examples/subsetsum
		t.Errorf("solution count = %d, want 656", m.Regs[2])
	}
}

func TestSubsetSumValidation(t *testing.T) {
	if _, err := SubsetSumProgram(make([]uint64, 9), 1, 8, Options{}); err == nil {
		t.Error("too many items accepted")
	}
	if _, err := SubsetSumProgram([]uint64{1, 2}, 99, 8, Options{}); err == nil {
		t.Error("unreachable target accepted")
	}
}

func BenchmarkSubsetSumGenerate(b *testing.B) {
	weights := []uint64{3, 34, 4, 12, 5, 2, 17, 29, 8, 21, 6, 11, 41, 9, 14, 7}
	for i := 0; i < b.N; i++ {
		if _, err := SubsetSumProgram(weights, 100, 16, Options{Reuse: true}); err != nil {
			b.Fatal(err)
		}
	}
}

// TestCSECorrectAndSmaller: gate-level common-subexpression elimination
// must preserve semantics and reduce the instruction count.
func TestCSECorrectAndSmaller(t *testing.T) {
	base, err := FactorProgram(15, 8, 4, 4, Options{})
	if err != nil {
		t.Fatal(err)
	}
	opt, err := FactorProgram(15, 8, 4, 4, Options{CSE: true})
	if err != nil {
		t.Fatal(err)
	}
	m := runAsm(t, opt.Asm, 8, false)
	if m.Regs[4] != 5 || m.Regs[1] != 3 {
		t.Fatalf("CSE broke factoring: $4=%d $1=%d", m.Regs[4], m.Regs[1])
	}
	if opt.QatInsts > base.QatInsts {
		t.Errorf("CSE grew the program: %d > %d", opt.QatInsts, base.QatInsts)
	}
	t.Logf("factor 15: %d insts base, %d insts with CSE", base.QatInsts, opt.QatInsts)
}

// TestCSEDedupesRepeatedGates: an artificial program with blatant
// redundancy collapses to single gates.
func TestCSEDedupesRepeatedGates(t *testing.T) {
	c := New(8, Options{CSE: true})
	a, b := c.Had(0), c.Had(1)
	x1 := c.Xor(a, b)
	x2 := c.Xor(a, b) // duplicate
	x3 := c.Xor(b, a) // commuted duplicate
	n1 := c.Not(x1)
	n2 := c.Not(x2) // duplicate via shared x
	if c.Err() != nil {
		t.Fatal(c.Err())
	}
	if c.CSEHits() != 3 {
		t.Errorf("CSE hits = %d, want 3", c.CSEHits())
	}
	r1, r2, r3 := c.Reg(&x1), c.Reg(&x2), c.Reg(&x3)
	if r1 != r2 || r1 != r3 {
		t.Error("duplicates not unified")
	}
	if c.Reg(&n1) != c.Reg(&n2) {
		t.Error("dependent duplicates not unified")
	}
	// 2 had + 1 xor + 1 not(copy+not = 2 insts) = 5 instructions total.
	if got := c.InstCount(); got != 5 {
		t.Errorf("emitted %d instructions, want 5", got)
	}
}

func TestCSERejectsReuse(t *testing.T) {
	c := New(8, Options{CSE: true, Reuse: true})
	if c.Err() == nil {
		t.Fatal("CSE+Reuse accepted")
	}
}

// TestCSESubsetSum: the gated adder chains expose real sharing.
func TestCSESubsetSum(t *testing.T) {
	weights := []uint64{3, 5, 7, 11, 13, 2, 9, 6}
	base, err := SubsetSumProgram(weights, 20, 8, Options{})
	if err != nil {
		t.Fatal(err)
	}
	opt, err := SubsetSumProgram(weights, 20, 8, Options{CSE: true})
	if err != nil {
		t.Fatal(err)
	}
	mBase := runAsm(t, base.Asm, 8, false)
	mOpt := runAsm(t, opt.Asm, 8, false)
	if mBase.Regs[2] != mOpt.Regs[2] || mBase.Regs[1] != mOpt.Regs[1] {
		t.Fatal("CSE changed subset-sum results")
	}
	t.Logf("subset-sum: %d insts base, %d with CSE", base.QatInsts, opt.QatInsts)
}

// TestNQueensProgram runs the compiled 4-queens search on the simulated
// hardware: 2 solutions, first at the known channel.
func TestNQueensProgram(t *testing.T) {
	res, err := NQueensProgram(4, 8, Options{Reuse: true})
	if err != nil {
		t.Fatal(err)
	}
	m := runAsm(t, res.Asm, 8, false)
	if m.Regs[2] != 2 {
		t.Fatalf("4-queens solutions = %d, want 2", m.Regs[2])
	}
	// The lower solution (2,0,3,1) encodes as 2 + 0<<2 + 3<<4 + 1<<6 = 114.
	if m.Regs[1] != 114 {
		t.Errorf("first solution channel = %d, want 114", m.Regs[1])
	}
	t.Logf("4-queens: %d qat insts, %d regs", res.QatInsts, res.RegsUsed)
}

// TestNQueens5OnHardware: 5-queens needs 15 of the 16 hardware ways.
func TestNQueens5OnHardware(t *testing.T) {
	res, err := NQueensProgram(5, 16, Options{Reuse: true})
	if err != nil {
		t.Fatal(err)
	}
	m := runAsm(t, res.Asm, 16, false)
	if m.Regs[2] != 10 {
		t.Fatalf("5-queens solutions = %d, want 10", m.Regs[2])
	}
}

func TestNQueensValidation(t *testing.T) {
	if _, err := NQueensProgram(1, 8, Options{}); err == nil {
		t.Error("n=1 accepted")
	}
	if _, err := NQueensProgram(6, 16, Options{}); err == nil {
		t.Error("6-queens (18 ways) accepted on 16-way hardware")
	}
}

func TestNeInt(t *testing.T) {
	c := New(8, Options{Reuse: true})
	a := c.HInt(4, 0x0F)
	b := c.HInt(4, 0xF0)
	ne := c.NeInt(a, b)
	reg := c.Reg(&ne)
	m := runAsm(t, c.Asm()+"lex $0,0\nsys\n", 8, false)
	for ch := uint64(0); ch < 256; ch++ {
		if m.Qat.Reg(reg).Get(ch) != (ch&15 != ch>>4) {
			t.Fatalf("ne at ch %d", ch)
		}
	}
}

// TestSubsetSumExtraWays: solutions are counted once even when the machine
// has more entanglement than items.
func TestSubsetSumExtraWays(t *testing.T) {
	weights := []uint64{3, 5, 7, 11}
	a, err := SubsetSumProgram(weights, 15, 4, Options{Reuse: true})
	if err != nil {
		t.Fatal(err)
	}
	b, err := SubsetSumProgram(weights, 15, 8, Options{Reuse: true})
	if err != nil {
		t.Fatal(err)
	}
	ma := runAsm(t, a.Asm, 4, false)
	mb := runAsm(t, b.Asm, 8, false)
	if ma.Regs[2] != mb.Regs[2] {
		t.Errorf("counts differ with idle ways: %d vs %d", ma.Regs[2], mb.Regs[2])
	}
	if ma.Regs[1] != mb.Regs[1] {
		t.Errorf("first solutions differ: %d vs %d", ma.Regs[1], mb.Regs[1])
	}
}

// TestFactorCompositeSweep: the generator handles arbitrary semiprimes at
// hardware scale.
func TestFactorCompositeSweep(t *testing.T) {
	cases := []struct {
		n        uint64
		aBits    int
		bBits    int
		ways     int
		expected [2]uint64
	}{
		{21, 5, 5, 10, [2]uint64{7, 3}},
		{35, 6, 6, 12, [2]uint64{7, 5}},
		{77, 7, 7, 14, [2]uint64{11, 7}},
		{143, 8, 8, 16, [2]uint64{13, 11}},
	}
	for _, c := range cases {
		res, err := FactorProgram(c.n, c.ways, c.aBits, c.bBits, Options{Reuse: true})
		if err != nil {
			t.Fatalf("n=%d: %v", c.n, err)
		}
		m := runAsm(t, res.Asm, c.ways, false)
		got := [2]uint64{uint64(m.Regs[4]), uint64(m.Regs[1])}
		if got[0]*got[1] != c.n {
			t.Errorf("n=%d: measured %v", c.n, got)
		}
	}
}
