// Package compile translates word-level PBP programs (the Figure 9 pint
// layer) into gate-level Tangled/Qat assembly — the role played in the
// paper by the "software-only PBP implementation ... slightly modified to
// output the gate-level operations rather than to perform them". Its
// flagship output is the complete prime-factoring program of Figure 10.
//
// The compiler builds word arithmetic from single-pbit gate instructions:
// ripple-carry adders, shift-add multipliers and equality trees over Qat
// registers. Constant pbits fold at compile time, so multiplying by a
// Hadamard operand emits only the gates that can actually toggle — the
// "aggressive bit-level compiler optimization" the paper's conclusions
// call for. Register handles are reference counted, because folding can
// alias one register behind several word-level values.
//
// Options reproduce the Section 5 design ablations:
//
//   - Reuse: the paper's generator "greedily uses registers so that every
//     intermediate computation's value is still available ... far fewer
//     registers, and fewer instructions, could have been used". Reuse=false
//     reproduces the faithful greedy-no-reuse allocation; Reuse=true frees
//     dead intermediates back to the allocator.
//   - ConstantRegs: draw 0/1/H(k) from the reserved constant registers
//     (@0, @1, @2+k) instead of emitting zero/one/had instructions.
//   - Reversible: restrict code generation to the reversible gate set
//     (not/cnot/ccnot plus register copies), quantifying the overhead the
//     irreversible and/or/xor instructions avoid.
package compile

import (
	"fmt"
	"math/bits"
	"strings"

	"tangled/internal/isa"
	"tangled/internal/qat"
)

// Options configures code generation; the zero value is the paper-faithful
// configuration (greedy no-reuse allocation, instruction initializers,
// irreversible gates, no CSE).
type Options struct {
	Reuse        bool
	ConstantRegs bool
	Reversible   bool
	// CSE enables gate-level common-subexpression elimination: an
	// operation whose operand registers and opcode were seen before reuses
	// the earlier result register instead of emitting a new gate — the
	// "aggressive bit-level compiler optimization" the paper's introduction
	// and conclusions call for (citing the LCPC'17 "How Low Can You Go?"
	// work). Sound only because registers are write-once under the greedy
	// allocator; CSE therefore cannot be combined with Reuse.
	CSE bool
}

type kind uint8

const (
	kindConst0 kind = iota
	kindConst1
	kindReg
)

// cell is a reference-counted Qat register binding.
type cell struct {
	reg  uint8
	refs int
}

// Pbit is a compile-time handle to a pbit value: either a folded constant
// (occupying no register) or a share of a Qat register. Each handle must be
// released with Compiler.Free exactly once (constants tolerate any number).
type Pbit struct {
	k kind
	c *cell
}

// IsConst reports whether the pbit folded to a compile-time constant.
func (p Pbit) IsConst() bool { return p.k != kindReg }

// ConstVal returns the folded constant (0 or 1); only valid when IsConst.
func (p Pbit) ConstVal() uint64 {
	if p.k == kindConst1 {
		return 1
	}
	return 0
}

// share returns an additional handle to the same register.
func (p Pbit) share() Pbit {
	if p.k == kindReg {
		p.c.refs++
	}
	return p
}

// Pint is a compiled pattern integer: pbits, least significant first.
type Pint struct {
	Bits []Pbit
}

// Width returns the bit width.
func (p Pint) Width() int { return len(p.Bits) }

// cseKey identifies a gate by opcode and operand registers.
type cseKey struct {
	op   byte
	a, b uint8
}

// Compiler accumulates generated assembly.
type Compiler struct {
	ways    int
	opts    Options
	lines   []string
	nextReg int
	free    []uint8
	inUse   int
	maxUse  int
	opCount map[string]int
	cse     map[cseKey]Pbit
	cseHits int
	err     error
}

// New returns a compiler for a Qat of the given entanglement degree.
func New(ways int, opts Options) *Compiler {
	c := &Compiler{ways: ways, opts: opts, opCount: make(map[string]int)}
	if opts.ConstantRegs {
		// Registers 0..1+ways hold the constant bank.
		c.nextReg = 2 + ways
	}
	if opts.CSE {
		if opts.Reuse {
			c.err = fmt.Errorf("compile: CSE requires write-once registers; disable Reuse")
		}
		c.cse = make(map[cseKey]Pbit)
	}
	return c
}

// CSEHits reports how many gates were eliminated by value reuse.
func (c *Compiler) CSEHits() int { return c.cseHits }

// cseLookup returns a prior result for (op, a, b) if CSE is on. Commutative
// ops normalize operand order.
func (c *Compiler) cseLookup(op byte, a, b uint8) (Pbit, bool) {
	if c.cse == nil {
		return Pbit{}, false
	}
	if b < a {
		a, b = b, a
	}
	p, ok := c.cse[cseKey{op, a, b}]
	if ok {
		c.cseHits++
		return p.share(), true
	}
	return Pbit{}, false
}

func (c *Compiler) cseStore(op byte, a, b uint8, result Pbit) {
	if c.cse == nil || result.k != kindReg {
		return
	}
	if b < a {
		a, b = b, a
	}
	c.cse[cseKey{op, a, b}] = result.share()
}

// Err returns the first code-generation error (e.g. register exhaustion).
func (c *Compiler) Err() error { return c.err }

// Asm returns the generated assembly text.
func (c *Compiler) Asm() string { return strings.Join(c.lines, "\n") + "\n" }

// InstCount returns the number of generated instructions.
func (c *Compiler) InstCount() int {
	n := 0
	for _, v := range c.opCount {
		n += v
	}
	return n
}

// OpCount returns per-mnemonic instruction counts.
func (c *Compiler) OpCount() map[string]int {
	out := make(map[string]int, len(c.opCount))
	for k, v := range c.opCount {
		out[k] = v
	}
	return out
}

// RegsUsed returns the register demand of the generated code: in reuse
// mode, the peak number of simultaneously live registers; in the paper's
// greedy no-reuse mode, the total number of distinct registers touched
// (Figure 10 touches @0..@80 — 81 registers). The constant bank counts
// when in use.
func (c *Compiler) RegsUsed() int {
	if !c.opts.Reuse {
		return c.nextReg
	}
	if c.opts.ConstantRegs {
		return c.maxUse + 2 + c.ways
	}
	return c.maxUse
}

func (c *Compiler) emit(format string, args ...interface{}) {
	line := fmt.Sprintf(format, args...)
	mn := line
	if i := strings.IndexAny(line, " \t"); i >= 0 {
		mn = line[:i]
	}
	c.opCount[mn]++
	c.lines = append(c.lines, line)
}

// Comment adds an assembly comment line (not counted as an instruction).
func (c *Compiler) Comment(text string) {
	c.lines = append(c.lines, "; "+text)
}

// alloc grabs a fresh (or recycled) Qat register as a new 1-ref cell.
func (c *Compiler) alloc() Pbit {
	var r uint8
	if n := len(c.free); c.opts.Reuse && n > 0 {
		r = c.free[n-1]
		c.free = c.free[:n-1]
	} else {
		if c.nextReg >= isa.NumQRegs {
			if c.err == nil {
				c.err = fmt.Errorf("compile: out of Qat registers (%d allocated; try Options.Reuse)", c.nextReg)
			}
			return Pbit{k: kindConst0}
		}
		r = uint8(c.nextReg)
		c.nextReg++
	}
	c.inUse++
	if c.inUse > c.maxUse {
		c.maxUse = c.inUse
	}
	return Pbit{k: kindReg, c: &cell{reg: r, refs: 1}}
}

// Free releases one handle; the register returns to the allocator when the
// last handle drops (and only in Reuse mode).
func (c *Compiler) Free(p Pbit) {
	if p.k != kindReg {
		return
	}
	p.c.refs--
	if p.c.refs < 0 {
		if c.err == nil {
			c.err = fmt.Errorf("compile: double free of @%d", p.c.reg)
		}
		return
	}
	if p.c.refs == 0 {
		c.inUse--
		if c.opts.Reuse {
			c.free = append(c.free, p.c.reg)
		}
	}
}

// FreeInt releases all bits of a pint.
func (c *Compiler) FreeInt(p Pint) {
	for _, b := range p.Bits {
		c.Free(b)
	}
}

// Const returns the constant pbit 0 or 1 (folded; no code emitted).
func (c *Compiler) Const(bit uint64) Pbit {
	if bit&1 == 1 {
		return Pbit{k: kindConst1}
	}
	return Pbit{k: kindConst0}
}

// materialize forces a pbit into a register, emitting an initializer for
// folded constants. The input handle is consumed; the result is fresh.
func (c *Compiler) materialize(p Pbit) Pbit {
	if p.k == kindReg {
		return p
	}
	out := c.alloc()
	if out.k != kindReg {
		return out
	}
	if c.opts.ConstantRegs {
		src := qat.ConstZeroReg()
		if p.k == kindConst1 {
			src = qat.ConstOneReg()
		}
		c.copyInto(out.c.reg, src)
	} else if p.k == kindConst1 {
		c.emit("one @%d", out.c.reg)
	} else {
		c.emit("zero @%d", out.c.reg)
	}
	return out
}

// Reg exposes the register backing p, materializing a constant first (the
// handle is updated in place).
func (c *Compiler) Reg(p *Pbit) uint8 {
	*p = c.materialize(*p)
	return p.c.reg
}

// Had returns a pbit holding Hadamard pattern k.
func (c *Compiler) Had(k int) Pbit {
	if k < 0 || k >= c.ways {
		if c.err == nil {
			c.err = fmt.Errorf("compile: had index %d out of range [0,%d)", k, c.ways)
		}
		return Pbit{k: kindConst0}
	}
	out := c.alloc()
	if out.k != kindReg {
		return out
	}
	if c.opts.ConstantRegs {
		c.copyInto(out.c.reg, qat.ConstHadReg(k))
	} else {
		c.emit("had @%d,%d", out.c.reg, k)
	}
	return out
}

// copyInto emits a register copy. The default is the paper's
// "or @d,@s,@s" idiom; in reversible mode the copy is built from
// reversible primitives as zero-then-cnot (a fresh register XORed with the
// source), which an adiabatic implementation can run without erasure of
// live data.
func (c *Compiler) copyInto(dst, src uint8) {
	if c.opts.Reversible {
		c.zeroRaw(dst)
		c.emit("cnot @%d,@%d", dst, src)
		return
	}
	c.emit("or @%d,@%d,@%d", dst, src, src)
}

// zeroRaw clears a register with the direct initializer, regardless of
// gate-set options (used below the copy abstraction to avoid recursion).
func (c *Compiler) zeroRaw(r uint8) {
	if c.opts.ConstantRegs {
		z := qat.ConstZeroReg()
		c.emit("or @%d,@%d,@%d", r, z, z)
	} else {
		c.emit("zero @%d", r)
	}
}

// And returns a AND b with constant folding. Inputs remain owned by the
// caller; the result is a new handle (possibly sharing an input register).
func (c *Compiler) And(a, b Pbit) Pbit {
	switch {
	case a.k == kindConst0 || b.k == kindConst0:
		return Pbit{k: kindConst0}
	case a.k == kindConst1:
		return b.share()
	case b.k == kindConst1:
		return a.share()
	}
	if prev, ok := c.cseLookup('&', a.c.reg, b.c.reg); ok {
		return prev
	}
	out := c.alloc()
	if out.k != kindReg {
		return out
	}
	if c.opts.Reversible {
		// zero t ; ccnot t,a,b  =>  t = 0 XOR (a AND b).
		c.zeroReg(out.c.reg)
		c.emit("ccnot @%d,@%d,@%d", out.c.reg, a.c.reg, b.c.reg)
	} else {
		c.emit("and @%d,@%d,@%d", out.c.reg, a.c.reg, b.c.reg)
	}
	c.cseStore('&', a.c.reg, b.c.reg, out)
	return out
}

func (c *Compiler) zeroReg(r uint8) { c.zeroRaw(r) }

// Or returns a OR b with constant folding.
func (c *Compiler) Or(a, b Pbit) Pbit {
	switch {
	case a.k == kindConst1 || b.k == kindConst1:
		return Pbit{k: kindConst1}
	case a.k == kindConst0:
		return b.share()
	case b.k == kindConst0:
		return a.share()
	}
	if c.opts.Reversible {
		// De Morgan from reversible primitives.
		na := c.Not(a)
		nb := c.Not(b)
		t := c.And(na, nb)
		c.Free(na)
		c.Free(nb)
		out := c.Not(t)
		c.Free(t)
		return out
	}
	if prev, ok := c.cseLookup('|', a.c.reg, b.c.reg); ok {
		return prev
	}
	out := c.alloc()
	if out.k != kindReg {
		return out
	}
	c.emit("or @%d,@%d,@%d", out.c.reg, a.c.reg, b.c.reg)
	c.cseStore('|', a.c.reg, b.c.reg, out)
	return out
}

// Xor returns a XOR b with constant folding.
func (c *Compiler) Xor(a, b Pbit) Pbit {
	switch {
	case a.k == kindConst0:
		return b.share()
	case b.k == kindConst0:
		return a.share()
	case a.k == kindConst1:
		return c.Not(b)
	case b.k == kindConst1:
		return c.Not(a)
	}
	if prev, ok := c.cseLookup('^', a.c.reg, b.c.reg); ok {
		return prev
	}
	out := c.alloc()
	if out.k != kindReg {
		return out
	}
	if c.opts.Reversible {
		c.copyInto(out.c.reg, a.c.reg)
		c.emit("cnot @%d,@%d", out.c.reg, b.c.reg)
	} else {
		c.emit("xor @%d,@%d,@%d", out.c.reg, a.c.reg, b.c.reg)
	}
	c.cseStore('^', a.c.reg, b.c.reg, out)
	return out
}

// Not returns NOT a, preserving a (fresh register, copy-then-invert — the
// idiom visible at the end of Figure 10: "or @80,@79,@79 ... not @80").
func (c *Compiler) Not(a Pbit) Pbit {
	switch a.k {
	case kindConst0:
		return Pbit{k: kindConst1}
	case kindConst1:
		return Pbit{k: kindConst0}
	}
	if prev, ok := c.cseLookup('~', a.c.reg, a.c.reg); ok {
		return prev
	}
	out := c.alloc()
	if out.k != kindReg {
		return out
	}
	c.copyInto(out.c.reg, a.c.reg)
	c.emit("not @%d", out.c.reg)
	c.cseStore('~', a.c.reg, a.c.reg, out)
	return out
}

// MkInt builds the width-bit constant pint (no code; constants fold).
func (c *Compiler) MkInt(width int, value uint64) Pint {
	out := Pint{Bits: make([]Pbit, width)}
	for i := range out.Bits {
		out.Bits[i] = c.Const(value >> uint(i))
	}
	return out
}

// HInt builds a width-bit Hadamard pint over the channel sets named by the
// set bits of mask — the compiled pint_h.
func (c *Compiler) HInt(width int, mask uint64) Pint {
	if bits.OnesCount64(mask) != width && c.err == nil {
		c.err = fmt.Errorf("compile: H mask %#x names %d sets, want %d", mask, bits.OnesCount64(mask), width)
	}
	out := Pint{Bits: make([]Pbit, 0, width)}
	for k := 0; k < 64 && len(out.Bits) < width; k++ {
		if (mask>>uint(k))&1 == 1 {
			out.Bits = append(out.Bits, c.Had(k))
		}
	}
	return out
}

// AddInt returns a + b, one bit wider than the wider input. The inputs
// remain owned by the caller.
func (c *Compiler) AddInt(a, b Pint) Pint {
	w := len(a.Bits)
	if len(b.Bits) > w {
		w = len(b.Bits)
	}
	bit := func(p Pint, i int) Pbit {
		if i < len(p.Bits) {
			return p.Bits[i]
		}
		return c.Const(0)
	}
	out := Pint{Bits: make([]Pbit, w+1)}
	carry := c.Const(0)
	for i := 0; i < w; i++ {
		ai, bi := bit(a, i), bit(b, i)
		axb := c.Xor(ai, bi)
		out.Bits[i] = c.Xor(axb, carry)
		ab := c.And(ai, bi)
		cx := c.And(carry, axb)
		newCarry := c.Or(ab, cx)
		c.Free(axb)
		c.Free(ab)
		c.Free(cx)
		c.Free(carry)
		carry = newCarry
	}
	out.Bits[w] = carry
	return out
}

// MulInt returns the full-width product a*b via gated shift-add. Inputs
// remain owned by the caller.
func (c *Compiler) MulInt(a, b Pint) Pint {
	wa, wb := len(a.Bits), len(b.Bits)
	acc := c.MkInt(wa+wb, 0)
	for j := 0; j < wb; j++ {
		pp := Pint{Bits: make([]Pbit, wa+wb)}
		for i := range pp.Bits {
			pp.Bits[i] = c.Const(0)
		}
		for i := 0; i < wa; i++ {
			pp.Bits[i+j] = c.And(a.Bits[i], b.Bits[j])
		}
		sum := c.AddInt(acc, pp)
		c.FreeInt(acc)
		c.FreeInt(pp)
		c.Free(sum.Bits[wa+wb]) // the product cannot overflow full width
		sum.Bits = sum.Bits[:wa+wb]
		acc = sum
	}
	return acc
}

// EqInt returns the single pbit (a == b), zero-extending the narrower.
// Inputs remain owned by the caller.
func (c *Compiler) EqInt(a, b Pint) Pbit {
	w := len(a.Bits)
	if len(b.Bits) > w {
		w = len(b.Bits)
	}
	bit := func(p Pint, i int) Pbit {
		if i < len(p.Bits) {
			return p.Bits[i]
		}
		return c.Const(0)
	}
	acc := c.Const(1)
	for i := 0; i < w; i++ {
		ai, bi := bit(a, i), bit(b, i)
		var eq Pbit
		switch {
		case ai.k == kindConst1:
			eq = bi.share()
		case ai.k == kindConst0:
			eq = c.Not(bi)
		case bi.k == kindConst1:
			eq = ai.share()
		case bi.k == kindConst0:
			eq = c.Not(ai)
		default:
			x := c.Xor(ai, bi)
			eq = c.Not(x)
			c.Free(x)
		}
		newAcc := c.And(acc, eq)
		c.Free(eq)
		c.Free(acc)
		acc = newAcc
	}
	return acc
}

// FactorResult describes a generated factoring program.
type FactorResult struct {
	// Asm is the complete runnable program: generated gates plus the
	// hand-written measurement tail and halt, as in Figure 10.
	Asm string
	// EReg is the Qat register holding the indicator pbit e.
	EReg uint8
	// QatInsts counts the generated gate-level instructions.
	QatInsts int
	// RegsUsed is the peak Qat register demand.
	RegsUsed int
}

// FactorProgram generates the complete Tangled/Qat prime-factoring program
// for n with aBits x bBits Hadamard operands (Figure 10 is n=15, 4x4 on
// 8-way Qat). After execution, Tangled registers $4 and $1 hold the two
// nontrivial factors — for 15: 5 and 3. (The paper leaves them in $0 and
// $1; a runnable image must reuse $0 as the sys-halt selector, so the $0
// factor is parked in $4.)
func FactorProgram(n uint64, ways, aBits, bBits int, opts Options) (*FactorResult, error) {
	if aBits+bBits > ways {
		return nil, fmt.Errorf("compile: %d+%d operand bits exceed %d-way entanglement", aBits, bBits, ways)
	}
	if n >= uint64(1)<<uint(aBits) {
		return nil, fmt.Errorf("compile: n=%d does not fit the %d-bit first operand", n, aBits)
	}
	c := New(ways, opts)
	c.Comment(fmt.Sprintf("factor %d: b (%d bits, sets 0-%d) x c (%d bits, sets %d-%d)",
		n, aBits, aBits-1, bBits, aBits, aBits+bBits-1))
	b := c.HInt(aBits, uint64(1)<<uint(aBits)-1)
	cc := c.HInt(bBits, (uint64(1)<<uint(bBits)-1)<<uint(aBits))
	d := c.MulInt(b, cc)
	a := c.MkInt(aBits, n)
	e := c.EqInt(d, a)
	if opts.Reuse {
		c.FreeInt(d)
		c.FreeInt(a)
	}
	if c.Err() != nil {
		return nil, c.Err()
	}
	eReg := c.Reg(&e)
	qatInsts := c.InstCount()

	// Hand-written measurement tail (cf. Figure 10): skip the trivial
	// factorizations (1*n lives at a high channel; n*1 at channel
	// n + 2^aBits), then pull the two nontrivial factor channels and mask
	// to the b operand — "the last two and operations are implementing the
	// k%16 operation".
	skip := n + uint64(1)<<uint(aBits)
	mask := uint64(1)<<uint(aBits) - 1
	var tail strings.Builder
	tail.WriteString("; measurement tail\n")
	fmt.Fprintf(&tail, "loadi $0,%d\n", skip)
	fmt.Fprintf(&tail, "next $0,@%d\n", eReg)
	tail.WriteString("copy $1,$0\n")
	fmt.Fprintf(&tail, "next $1,@%d\n", eReg)
	fmt.Fprintf(&tail, "loadi $2,%d\n", mask)
	tail.WriteString("and $0,$2\n")
	tail.WriteString("and $1,$2\n")
	// The paper's program ends here with the factors in $0 and $1. To make
	// the image runnable we must halt, and sys reads its selector from $0 —
	// so the $0 factor is preserved in $4 across the halt.
	tail.WriteString("copy $4,$0\nlex $0,0\nsys\n")

	return &FactorResult{
		Asm:      c.Asm() + tail.String(),
		EReg:     eReg,
		QatInsts: qatInsts,
		RegsUsed: c.RegsUsed(),
	}, c.Err()
}
