package compile

import (
	"strings"
	"testing"

	"tangled/internal/aob"
	"tangled/internal/asm"
	"tangled/internal/core"
	"tangled/internal/cpu"
)

func asmProgram(src string) (*asm.Program, error) { return asm.Assemble(src) }

// runAsm assembles and executes generated code on a functional machine.
func runAsm(t *testing.T, src string, ways int, constants bool) *cpu.Machine {
	t.Helper()
	var m *cpu.Machine
	if constants {
		m = cpu.NewWithConstants(ways)
	} else {
		m = cpu.New(ways)
	}
	prog, err := asmProgram(src)
	if err != nil {
		t.Fatalf("assemble: %v\nsource:\n%s", err, src)
	}
	if err := m.Load(prog); err != nil {
		t.Fatal(err)
	}
	if err := m.Run(10_000_000); err != nil {
		t.Fatalf("run: %v", err)
	}
	return m
}

// optionMatrix enumerates the Section 5 ablation space.
var optionMatrix = []Options{
	{},
	{Reuse: true},
	{ConstantRegs: true},
	{Reversible: true},
	{Reuse: true, ConstantRegs: true},
	{Reuse: true, Reversible: true},
	{Reuse: true, ConstantRegs: true, Reversible: true},
}

// TestFig10FactorAssembly generates and runs the Figure 10 program: the
// prime factors of 15 land in $4 (paper's $0) and $1 — 5 and 3.
func TestFig10FactorAssembly(t *testing.T) {
	for _, opts := range optionMatrix {
		res, err := FactorProgram(15, 8, 4, 4, opts)
		if err != nil {
			t.Fatalf("opts %+v: %v", opts, err)
		}
		m := runAsm(t, res.Asm, 8, opts.ConstantRegs)
		if m.Regs[4] != 5 || m.Regs[1] != 3 {
			t.Fatalf("opts %+v: factors $4=%d $1=%d, want 5 and 3\n%s",
				opts, m.Regs[4], m.Regs[1], res.Asm)
		}
	}
}

// TestFig10Scale sanity-checks the faithful configuration against the
// paper's program shape: Figure 10 lists ~80 Qat gate operations and
// allocates 81 registers (@0..@80) for factoring 15.
func TestFig10Scale(t *testing.T) {
	res, err := FactorProgram(15, 8, 4, 4, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.QatInsts < 40 || res.QatInsts > 200 {
		t.Errorf("generated %d Qat instructions; paper's program has ~80", res.QatInsts)
	}
	if res.RegsUsed < 30 || res.RegsUsed > 200 {
		t.Errorf("peak registers %d; paper used 81", res.RegsUsed)
	}
}

// TestX221Factor221Hardware factors the original 221 on the full 16-way
// hardware configuration. Greedy no-reuse allocation cannot fit (the paper
// notes "far fewer registers ... could have been used" — for 8x8 operands
// they are required), so this also demonstrates the Reuse ablation.
func TestX221Factor221Hardware(t *testing.T) {
	if _, err := FactorProgram(221, 16, 8, 8, Options{}); err == nil {
		t.Fatal("expected register exhaustion without reuse")
	}
	res, err := FactorProgram(221, 16, 8, 8, Options{Reuse: true})
	if err != nil {
		t.Fatal(err)
	}
	m := runAsm(t, res.Asm, 16, false)
	f1, f2 := m.Regs[4], m.Regs[1]
	if !(f1 == 17 && f2 == 13) && !(f1 == 13 && f2 == 17) {
		t.Fatalf("factors of 221: %d, %d", f1, f2)
	}
	if res.RegsUsed > 256 {
		t.Fatalf("reuse mode still needs %d registers", res.RegsUsed)
	}
	t.Logf("221: %d qat insts, %d peak regs", res.QatInsts, res.RegsUsed)
}

// TestIndicatorMatchesCoreModel cross-validates the compiled gate program
// against the direct PBP software model: the e register must hold exactly
// the channels where b*c == n.
func TestIndicatorMatchesCoreModel(t *testing.T) {
	for _, n := range []uint64{6, 9, 12, 15} {
		res, err := FactorProgram(n, 8, 4, 4, Options{Reuse: true})
		if err != nil {
			t.Fatal(err)
		}
		m := runAsm(t, res.Asm, 8, false)
		got := m.Qat.Reg(res.EReg)

		mm := core.NewAoB(8)
		b := core.H(mm, 4, 0x0F)
		cc := core.H(mm, 4, 0xF0)
		want := b.Mul(cc).Eq(core.Mk(mm, 8, n))
		if !got.Equal(want) {
			t.Fatalf("n=%d: e register %s != model %s", n, got, want)
		}
	}
}

// TestCompiledAdder compiles b+c over disjoint Hadamards and verifies every
// channel of every output bit against integer addition.
func TestCompiledAdder(t *testing.T) {
	for _, opts := range optionMatrix {
		c := New(8, opts)
		a := c.HInt(4, 0x0F)
		b := c.HInt(4, 0xF0)
		sum := c.AddInt(a, b)
		if c.Err() != nil {
			t.Fatalf("opts %+v: %v", opts, c.Err())
		}
		regs := make([]uint8, sum.Width())
		for i := range sum.Bits {
			regs[i] = c.Reg(&sum.Bits[i])
		}
		m := runAsm(t, c.Asm()+"lex $0,0\nsys\n", 8, opts.ConstantRegs)
		for ch := uint64(0); ch < 256; ch++ {
			va, vb := ch&15, ch>>4
			want := va + vb
			var got uint64
			for i, r := range regs {
				got |= m.Qat.Reg(r).Meas(ch) << uint(i)
			}
			if got != want {
				t.Fatalf("opts %+v ch %d: %d+%d = %d, got %d", opts, ch, va, vb, want, got)
			}
		}
	}
}

// TestCompiledMultiplier verifies the full 4x4 product on every channel.
func TestCompiledMultiplier(t *testing.T) {
	c := New(8, Options{Reuse: true})
	a := c.HInt(4, 0x0F)
	b := c.HInt(4, 0xF0)
	prod := c.MulInt(a, b)
	if c.Err() != nil {
		t.Fatal(c.Err())
	}
	regs := make([]uint8, prod.Width())
	for i := range prod.Bits {
		regs[i] = c.Reg(&prod.Bits[i])
	}
	m := runAsm(t, c.Asm()+"lex $0,0\nsys\n", 8, false)
	for ch := uint64(0); ch < 256; ch++ {
		want := (ch & 15) * (ch >> 4)
		var got uint64
		for i, r := range regs {
			got |= m.Qat.Reg(r).Meas(ch) << uint(i)
		}
		if got != want {
			t.Fatalf("ch %d: %d*%d = %d, got %d", ch, ch&15, ch>>4, want, got)
		}
	}
}

// TestS5AblationReversibleCostsMore: restricting to the reversible gate set
// (not/cnot/ccnot + copies) inflates the instruction count — the paper's
// question "is it worthwhile directly implementing the more-complex
// reversible gate operations?" answered from the other side.
func TestS5AblationReversibleCostsMore(t *testing.T) {
	irr, err := FactorProgram(15, 8, 4, 4, Options{Reuse: true})
	if err != nil {
		t.Fatal(err)
	}
	rev, err := FactorProgram(15, 8, 4, 4, Options{Reuse: true, Reversible: true})
	if err != nil {
		t.Fatal(err)
	}
	if rev.QatInsts <= irr.QatInsts {
		t.Errorf("reversible %d insts <= irreversible %d", rev.QatInsts, irr.QatInsts)
	}
	t.Logf("irreversible: %d insts; reversible: %d insts (%.2fx)",
		irr.QatInsts, rev.QatInsts, float64(rev.QatInsts)/float64(irr.QatInsts))
}

// TestS5AblationReuseShrinksRegisters quantifies the paper's observation
// that greedy no-reuse allocation wastes registers.
func TestS5AblationReuseShrinksRegisters(t *testing.T) {
	noReuse, err := FactorProgram(15, 8, 4, 4, Options{})
	if err != nil {
		t.Fatal(err)
	}
	reuse, err := FactorProgram(15, 8, 4, 4, Options{Reuse: true})
	if err != nil {
		t.Fatal(err)
	}
	if reuse.RegsUsed >= noReuse.RegsUsed {
		t.Errorf("reuse %d regs >= no-reuse %d", reuse.RegsUsed, noReuse.RegsUsed)
	}
	t.Logf("no-reuse: %d regs; reuse: %d regs", noReuse.RegsUsed, reuse.RegsUsed)
}

// TestS5AblationConstantRegsRemoveInitializers: with the constant bank, no
// had/zero/one instructions appear; copies from the bank replace them.
func TestS5AblationConstantRegsRemoveInitializers(t *testing.T) {
	res, err := FactorProgram(15, 8, 4, 4, Options{ConstantRegs: true})
	if err != nil {
		t.Fatal(err)
	}
	for _, mn := range []string{"had", "zero", "one"} {
		if strings.Contains(res.Asm, mn+" ") {
			t.Errorf("constant-reg program still contains %q", mn)
		}
	}
}

func TestConstantFolding(t *testing.T) {
	c := New(8, Options{})
	// Operations on constants emit nothing.
	if r := c.And(c.Const(1), c.Const(0)); !r.IsConst() || r.ConstVal() != 0 {
		t.Error("1 AND 0")
	}
	if r := c.Or(c.Const(1), c.Const(0)); !r.IsConst() || r.ConstVal() != 1 {
		t.Error("1 OR 0")
	}
	if r := c.Xor(c.Const(1), c.Const(1)); !r.IsConst() || r.ConstVal() != 0 {
		t.Error("1 XOR 1")
	}
	if r := c.Not(c.Const(0)); !r.IsConst() || r.ConstVal() != 1 {
		t.Error("NOT 0")
	}
	if c.InstCount() != 0 {
		t.Errorf("constant ops emitted %d instructions", c.InstCount())
	}
	// Mixed const/dynamic folds to the dynamic operand without code.
	h := c.Had(3)
	before := c.InstCount()
	if r := c.And(h, c.Const(1)); r.IsConst() {
		t.Error("h AND 1 lost the register")
	}
	if c.InstCount() != before {
		t.Error("identity AND emitted code")
	}
}

func TestDoubleFreeDetected(t *testing.T) {
	c := New(8, Options{Reuse: true})
	h := c.Had(0)
	c.Free(h)
	c.Free(h)
	if c.Err() == nil {
		t.Fatal("double free not detected")
	}
}

func TestRegisterExhaustion(t *testing.T) {
	c := New(8, Options{})
	for i := 0; i < 300; i++ {
		c.Had(0)
	}
	if c.Err() == nil {
		t.Fatal("no exhaustion error after 300 allocations")
	}
}

func TestHadOutOfRange(t *testing.T) {
	c := New(4, Options{})
	c.Had(4)
	if c.Err() == nil {
		t.Fatal("had 4 on 4-way accepted")
	}
}

func TestFactorValidation(t *testing.T) {
	if _, err := FactorProgram(15, 8, 5, 5, Options{}); err == nil {
		t.Error("operands exceeding ways accepted")
	}
	if _, err := FactorProgram(300, 8, 4, 4, Options{}); err == nil {
		t.Error("oversized n accepted")
	}
}

func TestReuseRecyclesRegisters(t *testing.T) {
	c := New(8, Options{Reuse: true})
	a := c.Had(0)
	b := c.Had(1)
	x := c.Xor(a, b)
	c.Free(a)
	c.Free(b)
	c.Free(x)
	// The next three allocations must recycle rather than grow.
	before := c.nextReg
	c.Had(2)
	c.Had(3)
	c.Had(4)
	if c.nextReg != before {
		t.Errorf("allocator grew to %d despite free list", c.nextReg)
	}
}

// TestSharedRegisterSurvivesPartialFree: folding can alias two handles to
// one register; freeing one must keep the register alive.
func TestSharedRegisterSurvivesPartialFree(t *testing.T) {
	c := New(8, Options{Reuse: true})
	h := c.Had(5)
	alias := c.And(h, c.Const(1)) // shares h's register
	c.Free(h)
	// Register must not be recycled: allocate and confirm it differs.
	n := c.Had(6)
	if n.c.reg == alias.c.reg {
		t.Fatal("live shared register was recycled")
	}
	// e still usable in an op.
	out := c.Xor(alias, n)
	if out.IsConst() {
		t.Fatal("lost value")
	}
	m := runAsm(t, c.Asm()+"lex $0,0\nsys\n", 8, false)
	want := aob.HadVector(8, 5)
	if !m.Qat.Reg(alias.c.reg).Equal(want) {
		t.Error("aliased register corrupted")
	}
}

func BenchmarkFig10Generate(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := FactorProgram(15, 8, 4, 4, Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkX221Generate(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := FactorProgram(221, 16, 8, 8, Options{Reuse: true}); err != nil {
			b.Fatal(err)
		}
	}
}
