package compile

import (
	"fmt"
	"strings"
)

// This file holds additional word-level operations and complete program
// generators beyond the Figure 10 factoring example: comparisons, gated
// accumulation, and a subset-sum solver — the same "reformulate the
// problem as entangled superposition" recipe applied to another NP search,
// all compiled to Table 3 gate instructions and runnable on the simulated
// hardware.

// LtInt returns the single pbit (a < b) as unsigned integers, built from a
// ripple borrow chain with constant folding. Inputs stay owned by the
// caller.
func (c *Compiler) LtInt(a, b Pint) Pbit {
	w := len(a.Bits)
	if len(b.Bits) > w {
		w = len(b.Bits)
	}
	bit := func(p Pint, i int) Pbit {
		if i < len(p.Bits) {
			return p.Bits[i]
		}
		return c.Const(0)
	}
	borrow := c.Const(0)
	for i := 0; i < w; i++ {
		ai, bi := bit(a, i), bit(b, i)
		na := c.Not(ai)
		t1 := c.And(na, bi)
		x := c.Xor(ai, bi)
		xn := c.Not(x)
		t2 := c.And(xn, borrow)
		newBorrow := c.Or(t1, t2)
		c.Free(na)
		c.Free(t1)
		c.Free(x)
		c.Free(xn)
		c.Free(t2)
		c.Free(borrow)
		borrow = newBorrow
	}
	return borrow
}

// MuxInt returns, channel-wise, b where sel=1 and a where sel=0 — the
// word-level cswap view. Inputs stay owned by the caller.
func (c *Compiler) MuxInt(a, b Pint, sel Pbit) Pint {
	w := len(a.Bits)
	if len(b.Bits) > w {
		w = len(b.Bits)
	}
	bit := func(p Pint, i int) Pbit {
		if i < len(p.Bits) {
			return p.Bits[i]
		}
		return c.Const(0)
	}
	ns := c.Not(sel)
	out := Pint{Bits: make([]Pbit, w)}
	for i := 0; i < w; i++ {
		t1 := c.And(bit(a, i), ns)
		t2 := c.And(bit(b, i), sel)
		out.Bits[i] = c.Or(t1, t2)
		c.Free(t1)
		c.Free(t2)
	}
	c.Free(ns)
	return out
}

// GatedConst returns the pint that is `value` where sel=1 and 0 elsewhere —
// the conditional-add operand. Thanks to constant folding this emits no
// instructions: 1-bits of value become shares of sel, 0-bits fold away.
func (c *Compiler) GatedConst(width int, value uint64, sel Pbit) Pint {
	out := Pint{Bits: make([]Pbit, width)}
	for i := range out.Bits {
		if value>>uint(i)&1 == 1 {
			out.Bits[i] = sel.share()
		} else {
			out.Bits[i] = c.Const(0)
		}
	}
	return out
}

// SubsetSumResult describes a generated subset-sum program.
type SubsetSumResult struct {
	// Asm is the runnable program. After execution:
	//   $1 = lowest solution channel (the subset bitmask), or 0 if the only
	//        solution is channel 0 or none exists (check $4),
	//   $2 = number of solutions,
	//   $4 = 1 if the empty subset (channel 0) is a solution.
	Asm      string
	EReg     uint8
	QatInsts int
	RegsUsed int
}

// SubsetSumProgram compiles "which subsets of weights sum to target" for
// the Qat hardware: one Hadamard pbit per item (so len(weights) must not
// exceed the entanglement degree), a gated ripple accumulator, and an
// equality indicator measured with the pop/next idiom.
func SubsetSumProgram(weights []uint64, target uint64, ways int, opts Options) (*SubsetSumResult, error) {
	if len(weights) > ways {
		return nil, fmt.Errorf("compile: %d items exceed %d-way entanglement", len(weights), ways)
	}
	var total uint64
	for _, w := range weights {
		total += w
	}
	if target > total {
		return nil, fmt.Errorf("compile: target %d exceeds total weight %d", target, total)
	}
	width := 1
	for uint64(1)<<uint(width) <= total {
		width++
	}
	c := New(ways, opts)
	c.Comment(fmt.Sprintf("subset-sum: %d items, target %d, %d-bit accumulator", len(weights), target, width))
	acc := c.MkInt(width, 0)
	for i, w := range weights {
		sel := c.Had(i)
		gated := c.GatedConst(width, w, sel)
		sum := c.AddInt(acc, gated)
		c.FreeInt(acc)
		c.FreeInt(gated)
		c.Free(sel)
		c.Free(sum.Bits[width])
		sum.Bits = sum.Bits[:width]
		acc = sum
	}
	e := c.EqInt(acc, c.MkInt(width, target))
	if opts.Reuse {
		c.FreeInt(acc)
	}
	// Pin unused channel sets to 0 so each subset is counted exactly once.
	for k := len(weights); k < ways; k++ {
		h := c.Had(k)
		nh := c.Not(h)
		e2 := c.And(e, nh)
		c.Free(e)
		c.Free(nh)
		c.Free(h)
		e = e2
	}
	if c.Err() != nil {
		return nil, c.Err()
	}
	eReg := c.Reg(&e)
	qatInsts := c.InstCount()

	var tail strings.Builder
	tail.WriteString("; measurement tail: count and first solution\n")
	fmt.Fprintf(&tail, "lex $2,0\npop $2,@%d\n", eReg)
	fmt.Fprintf(&tail, "lex $4,0\nmeas $4,@%d\n", eReg)
	tail.WriteString("add $2,$4\n") // total = pop-after-0 + channel 0
	fmt.Fprintf(&tail, "lex $1,0\nnext $1,@%d\n", eReg)
	tail.WriteString("lex $0,0\nsys\n")

	return &SubsetSumResult{
		Asm:      c.Asm() + tail.String(),
		EReg:     eReg,
		QatInsts: qatInsts,
		RegsUsed: c.RegsUsed(),
	}, c.Err()
}

// NeInt returns the single pbit (a != b). Inputs stay owned by the caller.
func (c *Compiler) NeInt(a, b Pint) Pbit {
	eq := c.EqInt(a, b)
	out := c.Not(eq)
	c.Free(eq)
	return out
}

// NQueensResult describes a generated N-queens program.
type NQueensResult struct {
	// Asm is the runnable program. After execution $2 holds the solution
	// count, $1 the lowest solution channel > 0 (board encoding: colBits
	// bits per row, row 0 least significant).
	Asm      string
	EReg     uint8
	ColBits  int
	QatInsts int
	RegsUsed int
}

// NQueensProgram compiles the N-queens constraint search to Qat gates: one
// Hadamard-superposed column pint per row, pairwise non-attacking
// constraints, and the pop/next measurement tail. Requires n*colBits ways.
func NQueensProgram(n, ways int, opts Options) (*NQueensResult, error) {
	if n < 2 {
		return nil, fmt.Errorf("compile: n-queens needs n >= 2")
	}
	colBits := 1
	for 1<<uint(colBits) < n {
		colBits++
	}
	if n*colBits > ways {
		return nil, fmt.Errorf("compile: %d-queens needs %d ways, have %d", n, n*colBits, ways)
	}
	c := New(ways, opts)
	c.Comment(fmt.Sprintf("%d-queens: %d column bits per row", n, colBits))
	cols := make([]Pint, n)
	for row := range cols {
		mask := (uint64(1)<<uint(colBits) - 1) << (uint(colBits) * uint(row))
		cols[row] = c.HInt(colBits, mask)
	}
	ok := c.Const(1)
	keep := func(cond Pbit) {
		next := c.And(ok, cond)
		c.Free(ok)
		c.Free(cond)
		ok = next
	}
	if n != 1<<uint(colBits) {
		limit := c.MkInt(colBits, uint64(n))
		for row := range cols {
			keep(c.LtInt(cols[row], limit))
		}
	}
	w := colBits + 1
	ext := func(p Pint) Pint {
		out := Pint{Bits: make([]Pbit, w)}
		for i := range out.Bits {
			if i < len(p.Bits) {
				out.Bits[i] = p.Bits[i].share()
			} else {
				out.Bits[i] = c.Const(0)
			}
		}
		return out
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			keep(c.NeInt(cols[i], cols[j]))
			d := c.MkInt(w, uint64(j-i))
			ci, cj := ext(cols[i]), ext(cols[j])
			si := c.AddInt(ci, d)
			si.Bits = si.Bits[:w+1]
			eq1 := c.EqInt(si, cj)
			keep(c.Not(eq1))
			c.Free(eq1)
			sj := c.AddInt(cj, d)
			eq2 := c.EqInt(sj, ci)
			keep(c.Not(eq2))
			c.Free(eq2)
			c.FreeInt(si)
			c.FreeInt(sj)
			c.FreeInt(ci)
			c.FreeInt(cj)
		}
	}
	// Pin any unused entanglement channel sets to 0, so each board appears
	// exactly once (otherwise every solution is duplicated 2^unused times
	// across the idle channels).
	for k := n * colBits; k < ways; k++ {
		h := c.Had(k)
		nh := c.Not(h)
		keep(nh)
		c.Free(h)
	}
	if c.Err() != nil {
		return nil, c.Err()
	}
	eReg := c.Reg(&ok)
	qatInsts := c.InstCount()

	var tail strings.Builder
	tail.WriteString("; measurement tail\n")
	fmt.Fprintf(&tail, "lex $2,0\npop $2,@%d\n", eReg)
	fmt.Fprintf(&tail, "lex $1,0\nnext $1,@%d\n", eReg)
	tail.WriteString("lex $0,0\nsys\n")

	return &NQueensResult{
		Asm:      c.Asm() + tail.String(),
		EReg:     eReg,
		ColBits:  colBits,
		QatInsts: qatInsts,
		RegsUsed: c.RegsUsed(),
	}, c.Err()
}
