package oracle

// Tests of the recompiled ("optimized") program source: the optimizer's
// output must hold the same final register state as the original sequence
// on every backend representation, and the algebraic property checks must
// survive recompilation of the scramble preamble.

import (
	"testing"
)

func TestRecompiledStateMatchesDirect(t *testing.T) {
	for _, ways := range []int{1, 2, 5, 8, 11} {
		for seed := int64(0); seed < 4; seed++ {
			direct := NewRef(ways, testRegs)
			if err := Scramble(direct, seed, 60, testRegs); err != nil {
				t.Fatalf("ways=%d seed=%d: %v", ways, seed, err)
			}
			for _, rec := range backendSet(t, ways) {
				if err := ScrambleRecompiled(rec, seed, 60, testRegs); err != nil {
					t.Fatalf("ways=%d seed=%d %s: %v", ways, seed, rec.Name(), err)
				}
				if err := Diff(direct, rec); err != nil {
					t.Fatalf("ways=%d seed=%d: recompiled %s diverges from direct ref: %v",
						ways, seed, rec.Name(), err)
				}
			}
		}
	}
}

func TestRecompiledShrinks(t *testing.T) {
	// Across seeds, recompilation must actually save gates somewhere (the
	// random sequences contain re-inits and constant-operand gates), and
	// must never grow.
	saved := 0
	for seed := int64(0); seed < 8; seed++ {
		seq := scrambleSeq(6, seed, 80, testRegs)
		rec, rep, err := RecompileSeq(seq, 6, testRegs)
		if err != nil {
			t.Fatalf("seed=%d: %v", seed, err)
		}
		if len(rec) > len(seq) {
			t.Fatalf("seed=%d: recompiled sequence grew: %d -> %d ops", seed, len(seq), len(rec))
		}
		saved += len(seq) - len(rec)
		if rep.ErasedAfter > rep.ErasedBefore {
			t.Fatalf("seed=%d: erased-bit bound grew: %d -> %d", seed, rep.ErasedBefore, rep.ErasedAfter)
		}
	}
	if saved == 0 {
		t.Fatal("recompilation saved nothing across all seeds: the source is vacuous")
	}
}

func TestPropertiesOnRecompiledPrograms(t *testing.T) {
	checks := []struct {
		name string
		fn   func(Backend) error
	}{
		{"de-morgan", CheckDeMorgan},
		{"xor-add-mod-2", CheckXorAddMod2},
		{"popafter-monotone", CheckPopAfterMonotone},
	}
	for _, ways := range []int{2, 5, 8} {
		for seed := int64(0); seed < 3; seed++ {
			for _, c := range checks {
				for _, b := range backendSet(t, ways) {
					if err := ScrambleRecompiled(b, seed*31+int64(ways), 40, testRegs); err != nil {
						t.Fatalf("ways=%d seed=%d %s: %v", ways, seed, b.Name(), err)
					}
					if err := c.fn(b); err != nil {
						t.Fatalf("ways=%d seed=%d check %s on recompiled state: %v", ways, seed, c.name, err)
					}
				}
			}
		}
	}
}

func TestRecompileSeqValidation(t *testing.T) {
	if _, _, err := RecompileSeq(nil, 0, testRegs); err == nil {
		t.Fatal("0 ways accepted")
	}
	if _, _, err := RecompileSeq(nil, 40, testRegs); err == nil {
		t.Fatal("out-of-range ways accepted")
	}
	if _, _, err := RecompileSeq(nil, 4, 0); err == nil {
		t.Fatal("0 regs accepted")
	}
	// The empty sequence recompiles to the empty sequence.
	rec, rep, err := RecompileSeq(nil, 4, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(rec) != 0 || !rep.Applied {
		t.Fatalf("empty sequence: %d ops, applied=%v", len(rec), rep.Applied)
	}
}
