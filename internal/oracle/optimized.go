package oracle

// The "optimized" program source: an oracle op sequence rendered as
// Tangled/Qat assembly, pushed through the optimizing recompiler
// (internal/opt), and decoded back into oracle ops. Running the recompiled
// sequence anywhere the original runs extends the optimizer's differential
// proof to the property-check layer: De Morgan, xor-as-addition-mod-2 and
// PopAfter monotonicity must hold on recompiled programs exactly as they do
// on the originals, on every backend.

import (
	"fmt"
	"strings"

	"tangled/internal/aob"
	"tangled/internal/isa"
	"tangled/internal/opt"
)

// renderSeq writes the register-writing ops of seq as assembly. Reductions
// are skipped (they would perturb Tangled state mid-sequence; the oracle
// compares full register state instead). The epilogue pins every register
// live with a pop so dead-store elimination cannot delete the computation
// whose final state the caller is about to Read, then halts.
func renderSeq(seq []Inst, numRegs int) string {
	var b strings.Builder
	for _, in := range seq {
		switch in.Op {
		case OpZero:
			fmt.Fprintf(&b, "\tzero\t@%d\n", in.D)
		case OpOne:
			fmt.Fprintf(&b, "\tone\t@%d\n", in.D)
		case OpHad:
			fmt.Fprintf(&b, "\thad\t@%d, %d\n", in.D, in.K)
		case OpNot:
			fmt.Fprintf(&b, "\tnot\t@%d\n", in.D)
		case OpAnd:
			fmt.Fprintf(&b, "\tand\t@%d, @%d, @%d\n", in.D, in.S, in.U)
		case OpOr:
			fmt.Fprintf(&b, "\tor\t@%d, @%d, @%d\n", in.D, in.S, in.U)
		case OpXor:
			fmt.Fprintf(&b, "\txor\t@%d, @%d, @%d\n", in.D, in.S, in.U)
		case OpCNot:
			fmt.Fprintf(&b, "\tcnot\t@%d, @%d\n", in.D, in.S)
		case OpCCNot:
			fmt.Fprintf(&b, "\tccnot\t@%d, @%d, @%d\n", in.D, in.S, in.U)
		case OpSwap:
			if in.D != in.S { // normalized away at the spec level
				fmt.Fprintf(&b, "\tswap\t@%d, @%d\n", in.D, in.S)
			}
		case OpCSwap:
			if in.D != in.S {
				fmt.Fprintf(&b, "\tcswap\t@%d, @%d, @%d\n", in.D, in.S, in.U)
			}
		}
	}
	for q := 0; q < numRegs; q++ {
		fmt.Fprintf(&b, "\tpop\t$1, @%d\n", q)
	}
	b.WriteString("\tlex\t$0, 0\n\tsys\n")
	return b.String()
}

// decodeSeq maps an optimized program's Qat instructions back into oracle
// ops, skipping the Tangled scaffolding (keep-alive pops, halt).
func decodeSeq(words []uint16) ([]Inst, error) {
	var seq []Inst
	for i := 0; i < len(words); {
		var w1 uint16
		if i+1 < len(words) {
			w1 = words[i+1]
		}
		in, n, err := isa.Primary.Decode(words[i], w1)
		if err != nil {
			return nil, fmt.Errorf("oracle: recompiled word %d does not decode: %w", i, err)
		}
		i += n
		var op Op
		switch in.Op {
		case isa.OpQZero:
			op = OpZero
		case isa.OpQOne:
			op = OpOne
		case isa.OpQHad:
			op = OpHad
		case isa.OpQNot:
			op = OpNot
		case isa.OpQAnd:
			op = OpAnd
		case isa.OpQOr:
			op = OpOr
		case isa.OpQXor:
			op = OpXor
		case isa.OpQCnot:
			op = OpCNot
		case isa.OpQCcnot:
			op = OpCCNot
		case isa.OpQSwap:
			op = OpSwap
		case isa.OpQCswap:
			op = OpCSwap
		default:
			continue // Tangled scaffolding and reductions
		}
		seq = append(seq, Inst{Op: op,
			D: int(in.QA), S: int(in.QB), U: int(in.QC), K: int(in.K)})
	}
	return seq, nil
}

// RecompileSeq routes the register-writing ops of seq through the
// optimizing recompiler and returns the (possibly shorter) equivalent
// sequence. The rendered program is well-formed by construction, so a
// refusal is an error, not a pass-through. ways must be within the dense
// hardware range; every Hadamard index in seq must be below it.
func RecompileSeq(seq []Inst, ways, numRegs int) ([]Inst, *opt.Report, error) {
	if ways <= 0 || ways > aob.MaxWays {
		return nil, nil, fmt.Errorf("oracle: recompile at %d ways: out of dense range", ways)
	}
	if numRegs <= 0 || numRegs > isa.NumQRegs {
		return nil, nil, fmt.Errorf("oracle: recompile over %d regs: out of range", numRegs)
	}
	src := renderSeq(seq, numRegs)
	prog, rep, err := opt.OptimizeSource(src, opt.Options{Ways: ways})
	if err != nil {
		return nil, nil, fmt.Errorf("oracle: recompiled source does not assemble: %w", err)
	}
	if !rep.Applied {
		return nil, rep, fmt.Errorf("oracle: optimizer refused a well-formed gate sequence: %s", rep.Reason)
	}
	out, err := decodeSeq(prog.Words)
	if err != nil {
		return nil, rep, err
	}
	return out, rep, nil
}

// ScrambleRecompiled is Scramble with the op sequence routed through the
// optimizing recompiler first: same seed, same resulting state, fewer (or
// equal) gates. Diffing a Scrambled backend against a ScrambleRecompiled
// one is the oracle-level differential proof of the optimizer.
func ScrambleRecompiled(b Backend, seed int64, steps, regs int) error {
	seq := scrambleSeq(b.Ways(), seed, steps, regs)
	rec, _, err := RecompileSeq(seq, b.Ways(), regs)
	if err != nil {
		return err
	}
	for i, inst := range rec {
		if err := b.Apply(inst); err != nil {
			return fmt.Errorf("oracle: recompiled scramble step %d %s: %w", i, inst.Op, err)
		}
	}
	return nil
}
