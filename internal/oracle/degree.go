package oracle

// Dynamic entanglement-degree measurement: the ground truth the static
// profiler (internal/profile) is checked against. The degree of a register
// value is the number of channel index bits its dense vector actually
// varies over — exactly the quantity profile.Compute upper-bounds with its
// dependence sets. The differential suite runs the corpus on the dense
// backend with a trace hook and asserts static >= dynamic per register.

import (
	"tangled/internal/aob"
	"tangled/internal/asm"
	"tangled/internal/cpu"
	"tangled/internal/isa"
	"tangled/internal/qat"
)

// VectorDegree returns the dynamic entanglement degree of v at the given
// width: the count of channel index bits k for which some channel pair
// (ch, ch^2^k) disagrees. A constant vector has degree 0; a single had
// degree 1.
func VectorDegree(v *aob.Vector, ways int) int {
	n := uint64(1) << uint(ways)
	deg := 0
	for k := 0; k < ways; k++ {
		bit := uint64(1) << uint(k)
		for ch := uint64(0); ch < n; ch++ {
			if ch&bit != 0 {
				continue // each pair once, from its low side
			}
			if v.Get(ch) != v.Get(ch|bit) {
				deg++
				break
			}
		}
	}
	return deg
}

// qatWrittenRegs returns the Qat registers inst writes (at most two).
func qatWrittenRegs(inst isa.Inst) []uint8 {
	switch inst.Op {
	case isa.OpQZero, isa.OpQOne, isa.OpQHad, isa.OpQNot,
		isa.OpQAnd, isa.OpQOr, isa.OpQXor, isa.OpQCnot, isa.OpQCcnot:
		return []uint8{inst.QA}
	case isa.OpQSwap, isa.OpQCswap:
		return []uint8{inst.QA, inst.QB}
	}
	return nil
}

// MaxEntanglementDegree executes prog on the dense backend at the given
// width and returns, per Qat register, the maximum dynamic degree observed
// after any write to it. The run's own failure (budget exhaustion, a
// faulting had index) is returned alongside whatever was measured up to
// that point — a sound profiler must bound the partial observations too.
//
// The machine's trace hook fires before an instruction executes, so each
// write is measured at the next hook invocation (and once more after the
// run returns) — the pending-instruction pattern.
func MaxEntanglementDegree(prog *asm.Program, ways int, maxSteps uint64) ([isa.NumQRegs]int, error) {
	var max [isa.NumQRegs]int
	m, err := cpu.NewFromConfig(qat.Config{Ways: ways})
	if err != nil {
		return max, err
	}
	if err := m.Load(prog); err != nil {
		return max, err
	}
	var pending []uint8
	measure := func() {
		for _, q := range pending {
			if d := VectorDegree(m.Qat.Reg(q), ways); d > max[q] {
				max[q] = d
			}
		}
		pending = pending[:0]
	}
	m.Trace = func(pc uint16, inst isa.Inst) {
		measure()
		pending = append(pending, qatWrittenRegs(inst)...)
	}
	runErr := m.Run(maxSteps)
	measure()
	return max, runErr
}
