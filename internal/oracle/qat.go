package oracle

// QatBackend adapts a full qat.Coprocessor to the oracle interface, so the
// differential layer exercises the real serving path — instruction dispatch,
// reserved-register checks, and whichever register file (dense or RE) the
// config selected — not just the kernels.

import (
	"fmt"

	"tangled/internal/isa"
	"tangled/internal/qat"
)

// QatBackend drives a coprocessor through Exec.
type QatBackend struct {
	q       *qat.Coprocessor
	label   string
	numRegs int
}

// NewQat wraps a coprocessor built from cfg. numRegs bounds the registers
// the op sequences touch (at most isa.NumQRegs).
func NewQat(cfg qat.Config, numRegs int) (*QatBackend, error) {
	q, err := qat.NewFromConfig(cfg)
	if err != nil {
		return nil, err
	}
	label := "qat-" + q.Backend()
	if cfg.Backend == qat.BackendRE && cfg.SpillRuns > 0 {
		label += "-spill"
	}
	return &QatBackend{q: q, label: label, numRegs: numRegs}, nil
}

func (b *QatBackend) Name() string { return b.label }
func (b *QatBackend) Ways() int    { return b.q.Ways() }
func (b *QatBackend) NumRegs() int { return b.numRegs }

// Coprocessor exposes the wrapped instance for backend-specific assertions
// (spill counts, symbol-table health).
func (b *QatBackend) Coprocessor() *qat.Coprocessor { return b.q }

var opToISA = map[Op]isa.Op{
	OpZero: isa.OpQZero, OpOne: isa.OpQOne, OpHad: isa.OpQHad, OpNot: isa.OpQNot,
	OpAnd: isa.OpQAnd, OpOr: isa.OpQOr, OpXor: isa.OpQXor,
	OpCNot: isa.OpQCnot, OpCCNot: isa.OpQCcnot,
	OpSwap: isa.OpQSwap, OpCSwap: isa.OpQCswap,
	OpMeas: isa.OpQMeas, OpNext: isa.OpQNext, OpPopAfter: isa.OpQPop,
}

func (b *QatBackend) Apply(inst Inst) error {
	op, ok := opToISA[inst.Op]
	if !ok {
		return fmt.Errorf("%s: %s is not a register op", b.label, inst.Op)
	}
	qi := isa.Inst{Op: op, QA: uint8(inst.D), QB: uint8(inst.S), QC: uint8(inst.U), K: uint8(inst.K)}
	// The abstract form writes D from S and U; the ISA's three-operand ops
	// write QA from QB and QC, which already lines up. The two-operand
	// in-place gates (cnot/ccnot) read QA as the accumulated operand, which
	// also lines up with the abstract D.
	_, _, err := b.q.Exec(qi, 0)
	return err
}

func (b *QatBackend) Reduce(inst Inst) (uint64, error) {
	// The coprocessor takes the probe channel from a 16-bit Tangled
	// register; mask the abstract channel the same way.
	rd := uint16(inst.Ch)
	switch inst.Op {
	case OpMeas, OpNext, OpPopAfter:
		out, writes, err := b.q.Exec(isa.Inst{Op: opToISA[inst.Op], QA: uint8(inst.D)}, rd)
		if err != nil {
			return 0, err
		}
		if !writes {
			return 0, fmt.Errorf("%s: %s produced no write-back", b.label, inst.Op)
		}
		return uint64(out), nil
	case OpPop:
		// POP is PopAfter(0) + Meas(0), the paper's decomposition.
		after, _, err := b.q.Exec(isa.Inst{Op: isa.OpQPop, QA: uint8(inst.D)}, 0)
		if err != nil {
			return 0, err
		}
		bit, _, err := b.q.Exec(isa.Inst{Op: isa.OpQMeas, QA: uint8(inst.D)}, 0)
		if err != nil {
			return 0, err
		}
		return uint64(after) + uint64(bit), nil
	}
	return 0, fmt.Errorf("%s: %s is not a reduction", b.label, inst.Op)
}

func (b *QatBackend) Read(d int) ([]bool, error) {
	return b.q.Reg(uint8(d)).Bits(), nil
}
