package oracle

import (
	"math/rand"
	"testing"

	"tangled/internal/qat"
)

const testRegs = 8

// backendSet builds one of every representation at the given ways: the
// naive reference, the raw SWAR kernels, and the Qat coprocessor on its
// dense, RE, and RE-with-aggressive-spill register files.
func backendSet(t *testing.T, ways int) []Backend {
	t.Helper()
	set := []Backend{
		NewRef(ways, testRegs),
		NewDense(ways, testRegs),
	}
	qd, err := NewQat(qat.Config{Ways: ways}, testRegs)
	if err != nil {
		t.Fatal(err)
	}
	qr, err := NewQat(qat.Config{Ways: ways, Backend: qat.BackendRE, ChunkWays: ways / 2}, testRegs)
	if err != nil {
		t.Fatal(err)
	}
	qs, err := NewQat(qat.Config{Ways: ways, Backend: qat.BackendRE, ChunkWays: ways / 2, SpillRuns: 1}, testRegs)
	if err != nil {
		t.Fatal(err)
	}
	return append(set, qd, qr, qs)
}

func TestPropertiesAcrossBackends(t *testing.T) {
	checks := []struct {
		name string
		fn   func(Backend) error
	}{
		{"de-morgan", CheckDeMorgan},
		{"xor-add-mod-2", CheckXorAddMod2},
		{"next-enumeration", CheckNextEnumeration},
		{"popafter-monotone", CheckPopAfterMonotone},
	}
	// qat.Config reads Ways 0 as "full hardware", so the qat-backed set
	// starts at 1; literal 0-way vectors are covered by the aob/re suites.
	for _, ways := range []int{1, 2, 5, 8, 11} {
		for seed := int64(0); seed < 3; seed++ {
			for _, c := range checks {
				// Fresh backends per check: properties mutate scratch regs.
				for _, b := range backendSet(t, ways) {
					if err := Scramble(b, seed*31+int64(ways), 40, testRegs); err != nil {
						t.Fatalf("ways=%d seed=%d %s: %v", ways, seed, b.Name(), err)
					}
					if err := c.fn(b); err != nil {
						t.Fatalf("ways=%d seed=%d check %s: %v", ways, seed, c.name, err)
					}
				}
			}
		}
	}
}

func TestRandomSequencesAcrossBackends(t *testing.T) {
	for _, ways := range []int{1, 3, 6, 9} {
		r := rand.New(rand.NewSource(int64(ways) + 5))
		for trial := 0; trial < 10; trial++ {
			data := make([]byte, 90)
			r.Read(data)
			seq := DecodeSequence(data, ways, testRegs)
			if err := RunSequence(seq, backendSet(t, ways)...); err != nil {
				t.Fatalf("ways=%d trial %d: %v", ways, trial, err)
			}
		}
	}
}

// TestScrambleDeterminism pins that Scramble is pure in its seed: the whole
// differential method rests on every backend seeing the same stream.
func TestScrambleDeterminism(t *testing.T) {
	a, b := NewRef(6, testRegs), NewRef(6, testRegs)
	if err := Scramble(a, 42, 60, testRegs); err != nil {
		t.Fatal(err)
	}
	if err := Scramble(b, 42, 60, testRegs); err != nil {
		t.Fatal(err)
	}
	if err := Diff(a, b); err != nil {
		t.Fatal(err)
	}
}

// TestDiffReportsDivergence makes sure the comparator actually fires.
func TestDiffReportsDivergence(t *testing.T) {
	a, b := NewRef(4, 2), NewRef(4, 2)
	if err := a.Apply(Inst{Op: OpOne, D: 1}); err != nil {
		t.Fatal(err)
	}
	if err := Diff(a, b); err == nil {
		t.Fatal("Diff missed a divergent register")
	}
}
