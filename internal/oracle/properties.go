package oracle

// Algebraic property checks over any Backend. Each check assumes registers
// 0 and 1 hold the operands under test (put there with Scramble or explicit
// ops) and uses registers 2..5 as scratch, so backends need NumRegs >= 6.

import (
	"fmt"
	"math/rand"
)

// scrambleSeq generates the deterministic pseudo-random register-op
// sequence Scramble applies, so the recompiling variant (optimized.go) can
// route the identical sequence through the optimizer.
func scrambleSeq(ways int, seed int64, steps, regs int) []Inst {
	r := rand.New(rand.NewSource(seed))
	var seq []Inst
	for i := 0; i < steps; i++ {
		inst := Inst{
			Op: Op(r.Intn(int(OpCSwap) + 1)), // register ops only
			D:  r.Intn(regs),
			S:  r.Intn(regs),
			U:  r.Intn(regs),
		}
		if ways > 0 {
			inst.K = r.Intn(ways)
		} else if inst.Op == OpHad {
			continue // no Hadamard patterns at 0 ways
		}
		if (inst.Op == OpSwap || inst.Op == OpCSwap) && inst.D == inst.S {
			continue
		}
		seq = append(seq, inst)
	}
	return seq
}

// Scramble drives a deterministic pseudo-random register-op sequence (no
// reductions) so every backend given the same seed holds identical, rich
// state. It only touches registers [0, regs).
func Scramble(b Backend, seed int64, steps, regs int) error {
	for i, inst := range scrambleSeq(b.Ways(), seed, steps, regs) {
		if err := b.Apply(inst); err != nil {
			return fmt.Errorf("oracle: scramble step %d %s: %w", i, inst.Op, err)
		}
	}
	return nil
}

// CheckDeMorgan verifies NOT(r0 AND r1) == (NOT r0) OR (NOT r1), computed
// entirely with the backend's own gates.
func CheckDeMorgan(b Backend) error {
	steps := []Inst{
		{Op: OpAnd, D: 2, S: 0, U: 1},
		{Op: OpNot, D: 2},
		{Op: OpXor, D: 3, S: 0, U: 0}, // 3 = 0 (zero via x^x)
		{Op: OpCNot, D: 3, S: 0},      // 3 = r0
		{Op: OpNot, D: 3},
		{Op: OpXor, D: 4, S: 1, U: 1},
		{Op: OpCNot, D: 4, S: 1},
		{Op: OpNot, D: 4},
		{Op: OpOr, D: 5, S: 3, U: 4},
	}
	for _, inst := range steps {
		if err := b.Apply(inst); err != nil {
			return fmt.Errorf("oracle: de morgan %s: %w", inst.Op, err)
		}
	}
	lhs, err := b.Read(2)
	if err != nil {
		return err
	}
	rhs, err := b.Read(5)
	if err != nil {
		return err
	}
	for c := range lhs {
		if lhs[c] != rhs[c] {
			return fmt.Errorf("oracle: %s violates De Morgan at channel %d", b.Name(), c)
		}
	}
	return nil
}

// CheckXorAddMod2 verifies XOR is channel-wise addition mod 2: the gate
// result of r0 XOR r1 must equal (bit0 + bit1) mod 2 everywhere.
func CheckXorAddMod2(b Backend) error {
	if err := b.Apply(Inst{Op: OpXor, D: 2, S: 0, U: 1}); err != nil {
		return err
	}
	a, err := b.Read(0)
	if err != nil {
		return err
	}
	x, err := b.Read(1)
	if err != nil {
		return err
	}
	got, err := b.Read(2)
	if err != nil {
		return err
	}
	for c := range got {
		ai, xi := 0, 0
		if a[c] {
			ai = 1
		}
		if x[c] {
			xi = 1
		}
		if want := (ai+xi)%2 == 1; got[c] != want {
			return fmt.Errorf("oracle: %s xor != add mod 2 at channel %d", b.Name(), c)
		}
	}
	return nil
}

// CheckNextEnumeration verifies that iterating Next from channel 0 (plus
// Meas of channel 0, the paper's ANY composition) enumerates exactly the
// set channels of register 0, strictly increasing.
func CheckNextEnumeration(b Backend) error {
	bits, err := b.Read(0)
	if err != nil {
		return err
	}
	var want []uint64
	for c, set := range bits {
		if set {
			want = append(want, uint64(c))
		}
	}
	var got []uint64
	if m, err := b.Reduce(Inst{Op: OpMeas, D: 0, Ch: 0}); err != nil {
		return err
	} else if m == 1 {
		got = append(got, 0)
	}
	ch := uint64(0)
	for {
		n, err := b.Reduce(Inst{Op: OpNext, D: 0, Ch: ch})
		if err != nil {
			return err
		}
		if n == 0 {
			break
		}
		if n <= ch {
			return fmt.Errorf("oracle: %s Next(%d) = %d not strictly increasing", b.Name(), ch, n)
		}
		got = append(got, n)
		ch = n
	}
	if len(got) != len(want) {
		return fmt.Errorf("oracle: %s Next enumerated %d channels, want %d", b.Name(), len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			return fmt.Errorf("oracle: %s Next enumeration[%d] = %d, want %d", b.Name(), i, got[i], want[i])
		}
	}
	return nil
}

// CheckPopAfterMonotone verifies PopAfter is non-increasing in the probe
// channel and that successive differences are exactly the measured bits —
// the discrete derivative relation that makes PopAfter a prefix-sum
// complement.
func CheckPopAfterMonotone(b Backend) error {
	channels := uint64(1) << uint(b.Ways())
	prev, err := b.Reduce(Inst{Op: OpPopAfter, D: 0, Ch: 0})
	if err != nil {
		return err
	}
	step := channels / 64
	if step == 0 {
		step = 1
	}
	for ch := step; ch < channels; ch += step {
		cur, err := b.Reduce(Inst{Op: OpPopAfter, D: 0, Ch: ch})
		if err != nil {
			return err
		}
		if cur > prev {
			return fmt.Errorf("oracle: %s PopAfter(%d)=%d > PopAfter(%d-step)=%d",
				b.Name(), ch, cur, ch, prev)
		}
		prev = cur
	}
	// Pointwise: PopAfter(ch) - PopAfter(ch+1) == bit(ch+1).
	for probe := uint64(0); probe+1 < channels; probe += step {
		hi, err := b.Reduce(Inst{Op: OpPopAfter, D: 0, Ch: probe})
		if err != nil {
			return err
		}
		lo, err := b.Reduce(Inst{Op: OpPopAfter, D: 0, Ch: probe + 1})
		if err != nil {
			return err
		}
		bit, err := b.Reduce(Inst{Op: OpMeas, D: 0, Ch: probe + 1})
		if err != nil {
			return err
		}
		if hi-lo != bit {
			return fmt.Errorf("oracle: %s PopAfter(%d)-PopAfter(%d) = %d, want bit %d",
				b.Name(), probe, probe+1, hi-lo, bit)
		}
	}
	return nil
}
