// Package oracle is the shared differential/property test layer for the
// pbit execution backends. It defines a deliberately naive bit-at-a-time
// reference model (Value, RefBackend), a Backend interface every real
// representation adapts to (dense AoB kernels, the Qat coprocessor on
// either register file), a byte-decoded op-sequence runner for fuzzing, and
// the algebraic property checks the paper's gate set must satisfy.
//
// The package is test support but not a _test package: farm, server, and
// fuzz harnesses in several packages drive it, so it follows the farmtest
// convention — importable, no testing dependency, error-returning API.
package oracle

import (
	"fmt"

	"tangled/internal/aob"
)

// Op enumerates the abstract pbit operations a Backend executes. The
// numbering is the wire format of RunSequence's byte decoder, so it is
// frozen: fuzz corpora encode it.
type Op byte

const (
	OpZero Op = iota
	OpOne
	OpHad
	OpNot
	OpAnd
	OpOr
	OpXor
	OpCNot
	OpCCNot
	OpSwap
	OpCSwap
	OpMeas
	OpNext
	OpPopAfter
	OpPop
	numOps
)

var opNames = [numOps]string{
	"zero", "one", "had", "not", "and", "or", "xor",
	"cnot", "ccnot", "swap", "cswap", "meas", "next", "popafter", "pop",
}

func (o Op) String() string {
	if int(o) < len(opNames) {
		return opNames[o]
	}
	return fmt.Sprintf("op(%d)", byte(o))
}

// IsReduction reports whether the op returns a scalar instead of writing a
// register.
func (o Op) IsReduction() bool { return o >= OpMeas }

// Inst is one abstract operation: D is the destination (and first operand
// for the in-place gates), S and U the source registers, K the Hadamard
// index, Ch the reduction probe channel.
type Inst struct {
	Op   Op
	D    int
	S, U int
	K    int
	Ch   uint64
}

// Backend is a pbit register file under test.
type Backend interface {
	// Name labels the backend in error messages.
	Name() string
	// Ways is the entanglement degree.
	Ways() int
	// NumRegs is the register-file size the backend was built with.
	NumRegs() int
	// Apply executes a register-writing op.
	Apply(inst Inst) error
	// Reduce executes a scalar-producing op on register inst.D at channel
	// inst.Ch.
	Reduce(inst Inst) (uint64, error)
	// Read dumps register d as channel-0-first bits.
	Read(d int) ([]bool, error)
}

// Value is the naive model of one pbit register: a channel-indexed bool
// slice with every operation written as the obvious loop. Slow on purpose —
// it is the specification the fast representations are judged against.
type Value []bool

// NewValue returns an all-zero value with 2^ways channels.
func NewValue(ways int) Value { return make(Value, uint64(1)<<uint(ways)) }

func (v Value) mask() uint64 { return uint64(len(v)) - 1 }

// Next returns the lowest channel strictly above ch holding true, else 0.
func (v Value) Next(ch uint64) uint64 {
	for c := ch + 1; c < uint64(len(v)); c++ {
		if v[c] {
			return c
		}
	}
	return 0
}

// PopAfter counts true channels strictly above ch.
func (v Value) PopAfter(ch uint64) uint64 {
	var n uint64
	for c := ch + 1; c < uint64(len(v)); c++ {
		if v[c] {
			n++
		}
	}
	return n
}

// Pop counts true channels.
func (v Value) Pop() uint64 {
	var n uint64
	for _, b := range v {
		if b {
			n++
		}
	}
	return n
}

// RefBackend is the Backend over naive Values.
type RefBackend struct {
	ways int
	regs []Value
}

// NewRef builds the reference backend.
func NewRef(ways, numRegs int) *RefBackend {
	r := &RefBackend{ways: ways, regs: make([]Value, numRegs)}
	for i := range r.regs {
		r.regs[i] = NewValue(ways)
	}
	return r
}

func (r *RefBackend) Name() string { return "ref" }
func (r *RefBackend) Ways() int    { return r.ways }
func (r *RefBackend) NumRegs() int { return len(r.regs) }

func (r *RefBackend) Apply(inst Inst) error {
	d, s, u := r.regs[inst.D], r.regs[inst.S], r.regs[inst.U]
	switch inst.Op {
	case OpZero:
		for c := range d {
			d[c] = false
		}
	case OpOne:
		for c := range d {
			d[c] = true
		}
	case OpHad:
		if inst.K < 0 || inst.K >= r.ways {
			return fmt.Errorf("ref: had %d out of range", inst.K)
		}
		for c := range d {
			d[c] = (c>>uint(inst.K))&1 == 1
		}
	case OpNot:
		for c := range d {
			d[c] = !d[c]
		}
	case OpAnd:
		for c := range d {
			d[c] = s[c] && u[c]
		}
	case OpOr:
		for c := range d {
			d[c] = s[c] || u[c]
		}
	case OpXor:
		for c := range d {
			d[c] = s[c] != u[c]
		}
	case OpCNot:
		for c := range d {
			d[c] = d[c] != s[c]
		}
	case OpCCNot:
		for c := range d {
			d[c] = d[c] != (s[c] && u[c])
		}
	case OpSwap:
		for c := range d {
			d[c], s[c] = s[c], d[c]
		}
	case OpCSwap:
		for c := range d {
			if u[c] {
				d[c], s[c] = s[c], d[c]
			}
		}
	default:
		return fmt.Errorf("ref: %s is not a register op", inst.Op)
	}
	return nil
}

func (r *RefBackend) Reduce(inst Inst) (uint64, error) {
	d := r.regs[inst.D]
	ch := inst.Ch & d.mask()
	switch inst.Op {
	case OpMeas:
		if d[ch] {
			return 1, nil
		}
		return 0, nil
	case OpNext:
		return d.Next(ch), nil
	case OpPopAfter:
		return d.PopAfter(ch), nil
	case OpPop:
		return d.Pop(), nil
	}
	return 0, fmt.Errorf("ref: %s is not a reduction", inst.Op)
}

func (r *RefBackend) Read(d int) ([]bool, error) {
	out := make([]bool, len(r.regs[d]))
	copy(out, r.regs[d])
	return out, nil
}

// DenseBackend drives the aob SWAR kernels directly (no Qat dispatch),
// isolating the kernel layer in differential runs.
type DenseBackend struct {
	ways int
	regs []*aob.Vector
}

// NewDense builds the raw-kernel backend.
func NewDense(ways, numRegs int) *DenseBackend {
	b := &DenseBackend{ways: ways, regs: make([]*aob.Vector, numRegs)}
	for i := range b.regs {
		b.regs[i] = aob.New(ways)
	}
	return b
}

func (b *DenseBackend) Name() string { return "dense" }
func (b *DenseBackend) Ways() int    { return b.ways }
func (b *DenseBackend) NumRegs() int { return len(b.regs) }

func (b *DenseBackend) Apply(inst Inst) error {
	d, s, u := b.regs[inst.D], b.regs[inst.S], b.regs[inst.U]
	switch inst.Op {
	case OpZero:
		d.Zero()
	case OpOne:
		d.One()
	case OpHad:
		if inst.K < 0 || inst.K >= b.ways {
			return fmt.Errorf("dense: had %d out of range", inst.K)
		}
		d.Had(inst.K)
	case OpNot:
		d.Not()
	case OpAnd:
		d.And(s, u)
	case OpOr:
		d.Or(s, u)
	case OpXor:
		d.Xor(s, u)
	case OpCNot:
		d.CNot(s)
	case OpCCNot:
		d.CCNot(s, u)
	case OpSwap:
		if inst.D != inst.S {
			d.Swap(s)
		}
	case OpCSwap:
		if inst.D != inst.S {
			d.CSwap(s, u)
		}
	default:
		return fmt.Errorf("dense: %s is not a register op", inst.Op)
	}
	return nil
}

func (b *DenseBackend) Reduce(inst Inst) (uint64, error) {
	d := b.regs[inst.D]
	switch inst.Op {
	case OpMeas:
		return d.Meas(inst.Ch), nil
	case OpNext:
		return d.Next(inst.Ch), nil
	case OpPopAfter:
		return d.PopAfter(inst.Ch), nil
	case OpPop:
		return d.Pop(), nil
	}
	return 0, fmt.Errorf("dense: %s is not a reduction", inst.Op)
}

func (b *DenseBackend) Read(d int) ([]bool, error) { return b.regs[d].Bits(), nil }

// Diff compares every register of two backends channel by channel and
// returns a located error on the first divergence.
func Diff(a, b Backend) error {
	if a.Ways() != b.Ways() {
		return fmt.Errorf("oracle: ways %d (%s) vs %d (%s)", a.Ways(), a.Name(), b.Ways(), b.Name())
	}
	n := a.NumRegs()
	if bn := b.NumRegs(); bn < n {
		n = bn
	}
	for d := 0; d < n; d++ {
		av, err := a.Read(d)
		if err != nil {
			return fmt.Errorf("oracle: read %s reg %d: %w", a.Name(), d, err)
		}
		bv, err := b.Read(d)
		if err != nil {
			return fmt.Errorf("oracle: read %s reg %d: %w", b.Name(), d, err)
		}
		for c := range av {
			if av[c] != bv[c] {
				return fmt.Errorf("oracle: reg %d channel %d: %s=%v %s=%v",
					d, c, a.Name(), av[c], b.Name(), bv[c])
			}
		}
	}
	return nil
}

// DecodeSequence turns a byte stream into a bounded op sequence over
// numRegs registers at the given ways — the shared encoding of the fuzzers.
// Each instruction consumes three bytes: opcode, packed registers, probe.
func DecodeSequence(data []byte, ways, numRegs int) []Inst {
	var seq []Inst
	for len(data) >= 3 {
		inst := Inst{
			Op: Op(data[0] % byte(numOps)),
			D:  int(data[1]) % numRegs,
			S:  int(data[1]>>4) % numRegs,
			U:  int(data[2]) % numRegs,
			Ch: uint64(data[1])<<8 | uint64(data[2]),
		}
		if ways > 0 {
			inst.K = int(data[2]>>4) % ways
		}
		data = data[3:]
		seq = append(seq, inst)
	}
	return seq
}

// RunSequence executes one instruction sequence on every backend in
// lockstep, comparing scalar results per step and full register state at the
// end. backends[0] is the authority named in mismatch errors.
func RunSequence(seq []Inst, backends ...Backend) error {
	if len(backends) == 0 {
		return nil
	}
	for step, inst := range seq {
		if inst.Op.IsReduction() {
			want, err := backends[0].Reduce(inst)
			if err != nil {
				return fmt.Errorf("oracle: step %d %s on %s: %w", step, inst.Op, backends[0].Name(), err)
			}
			for _, b := range backends[1:] {
				got, err := b.Reduce(inst)
				if err != nil {
					return fmt.Errorf("oracle: step %d %s on %s: %w", step, inst.Op, b.Name(), err)
				}
				if got != want {
					return fmt.Errorf("oracle: step %d %s(reg %d, ch %d): %s=%d %s=%d",
						step, inst.Op, inst.D, inst.Ch, backends[0].Name(), want, b.Name(), got)
				}
			}
			continue
		}
		// Swap-family self-targeting differs per representation; normalize
		// the degenerate case away at the spec level.
		if (inst.Op == OpSwap || inst.Op == OpCSwap) && inst.D == inst.S {
			continue
		}
		for _, b := range backends {
			if err := b.Apply(inst); err != nil {
				return fmt.Errorf("oracle: step %d %s on %s: %w", step, inst.Op, b.Name(), err)
			}
		}
	}
	for _, b := range backends[1:] {
		if err := Diff(backends[0], b); err != nil {
			return fmt.Errorf("oracle: after %d steps: %w", len(seq), err)
		}
	}
	return nil
}
