package jobs

import "tangled/internal/obs"

// Obs is the jobs metric family. Every method is nil-receiver safe (the
// obs package's own nil-safety discipline), so an unobserved Manager pays
// only a nil check per transition.
type Obs struct {
	// QueueDepth is per-tenant queued jobs (jobs_queue_depth{tenant=...}).
	QueueDepth *obs.GaugeVec
	// Running is currently executing jobs.
	Running *obs.Gauge
	// States counts FSM transitions by state entered.
	States *obs.CounterVec
	// Resumed counts queued jobs re-admitted after restart; ResumeFailed
	// counts running-at-crash jobs marked failed on restart.
	Resumed      *obs.Counter
	ResumeFailed *obs.Counter
	// Rejected counts ErrQueueFull refusals.
	Rejected *obs.Counter
	// Evicted counts terminal jobs dropped by the retention bound.
	Evicted *obs.Counter
	// WALRecords/WALBytes describe the live log; Compactions counts
	// snapshot rewrites.
	WALRecords  *obs.Gauge
	WALBytes    *obs.Gauge
	Compactions *obs.Counter
	// Subscribers is current event-stream subscribers; EventsDropped
	// counts events lost to slow subscribers (recoverable via since).
	Subscribers   *obs.Gauge
	EventsDropped *obs.Counter
}

// NewObs registers the jobs metric family on r (nil r yields a fully
// detached, still-safe Obs).
func NewObs(r *obs.Registry) *Obs {
	return &Obs{
		QueueDepth:    r.GaugeVec("jobs_queue_depth", "Queued jobs per tenant.", "tenant"),
		Running:       r.Gauge("jobs_running", "Jobs currently executing."),
		States:        r.CounterVec("jobs_state_total", "Job FSM transitions by state entered.", "state", []string{"queued", "running", "completed", "failed", "canceled"}),
		Resumed:       r.Counter("jobs_resumed_total", "Queued jobs re-admitted from the WAL after restart."),
		ResumeFailed:  r.Counter("jobs_resume_failed_total", "Jobs running at crash, marked failed on restart."),
		Rejected:      r.Counter("jobs_rejected_total", "Job submissions refused by the queue bound."),
		Evicted:       r.Counter("jobs_evicted_total", "Terminal jobs dropped by the retention bound."),
		WALRecords:    r.Gauge("jobs_wal_records", "Records in the WAL since the last compaction."),
		WALBytes:      r.Gauge("jobs_wal_bytes", "Current WAL file size in bytes."),
		Compactions:   r.Counter("jobs_wal_compactions_total", "WAL snapshot rewrites."),
		Subscribers:   r.Gauge("jobs_event_subscribers", "Current lifecycle-event stream subscribers."),
		EventsDropped: r.Counter("jobs_events_dropped_total", "Events dropped on slow subscriber channels."),
	}
}

func (o *Obs) setQueueDepth(tenant string, n int) {
	if o == nil {
		return
	}
	o.QueueDepth.With(tenant).Set(int64(n))
}

func (o *Obs) setRunning(n int64) {
	if o == nil {
		return
	}
	o.Running.Set(n)
}

// stateIdx maps a state to its CounterVec index (registration order of
// the values list in NewObs).
func stateIdx(st State) int {
	switch st {
	case StateQueued:
		return 0
	case StateRunning:
		return 1
	case StateCompleted:
		return 2
	case StateFailed:
		return 3
	case StateCanceled:
		return 4
	}
	return -1
}

func (o *Obs) countState(st State) {
	if o == nil {
		return
	}
	o.States.At(stateIdx(st)).Inc()
}

func (o *Obs) incResumed() {
	if o == nil {
		return
	}
	o.Resumed.Inc()
}

func (o *Obs) incResumeFailed() {
	if o == nil {
		return
	}
	o.ResumeFailed.Inc()
}

func (o *Obs) incRejected() {
	if o == nil {
		return
	}
	o.Rejected.Inc()
}

func (o *Obs) incEvicted() {
	if o == nil {
		return
	}
	o.Evicted.Inc()
}

func (o *Obs) setWAL(records int, bytes int64) {
	if o == nil {
		return
	}
	o.WALRecords.Set(int64(records))
	o.WALBytes.Set(bytes)
}

func (o *Obs) incCompactions() {
	if o == nil {
		return
	}
	o.Compactions.Inc()
}

func (o *Obs) setSubscribers(n int64) {
	if o == nil {
		return
	}
	o.Subscribers.Set(n)
}

func (o *Obs) incEventsDropped() {
	if o == nil {
		return
	}
	o.EventsDropped.Inc()
}
