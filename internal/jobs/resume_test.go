package jobs

import (
	"bytes"
	"context"
	"encoding/json"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"
)

// writeWAL hand-authors a log file from records, simulating the on-disk
// state a SIGKILLed process leaves behind (no clean-close compaction).
func writeWAL(t *testing.T, dir string, recs ...walRecord) {
	t.Helper()
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	if err := enc.Encode(walHeader{Schema: WALSchema, Version: WALVersion}); err != nil {
		t.Fatal(err)
	}
	for _, r := range recs {
		if err := enc.Encode(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := os.WriteFile(filepath.Join(dir, walFile), buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
}

func TestCrashResume(t *testing.T) {
	dir := t.TempDir()
	now := time.Now().UTC().Truncate(time.Second)
	writeWAL(t, dir,
		// Two jobs still queued at crash, submitted in order q1 then q2.
		walRecord{Op: opJob, Job: &Job{ID: "q1", Tenant: "t", State: StateQueued, Submitted: now, Seq: 0}},
		walRecord{Op: opJob, Job: &Job{ID: "q2", Tenant: "t", State: StateQueued, Submitted: now, Seq: 1}},
		// One job mid-execution at crash.
		walRecord{Op: opJob, Job: &Job{ID: "r1", State: StateQueued, Submitted: now, Seq: 2}},
		walRecord{Op: opState, ID: "r1", State: StateRunning, Time: now},
		// One job already finished, result durable.
		walRecord{Op: opJob, Job: &Job{ID: "done", State: StateQueued, Submitted: now, Seq: 3}},
		walRecord{Op: opState, ID: "done", State: StateRunning, Time: now},
		walRecord{Op: opState, ID: "done", State: StateCompleted, Result: json.RawMessage(`{"v":42}`), Time: now},
	)

	var mu sync.Mutex
	runs := map[string]int{}
	var order []string
	m, err := New(Config{Dir: dir, Workers: 1}, func(ctx context.Context, j Job) (json.RawMessage, error) {
		mu.Lock()
		runs[j.ID]++
		order = append(order, j.ID)
		mu.Unlock()
		return json.RawMessage(`{"rerun":true}`), nil
	})
	if err != nil {
		t.Fatal(err)
	}
	defer closeNow(t, m)

	// Queued jobs re-run exactly once, in original submit order.
	waitState(t, m, "q1", StateCompleted)
	waitState(t, m, "q2", StateCompleted)
	mu.Lock()
	if runs["q1"] != 1 || runs["q2"] != 1 || len(runs) != 2 {
		t.Fatalf("re-run counts %v, want q1/q2 exactly once", runs)
	}
	if order[0] != "q1" || order[1] != "q2" {
		t.Fatalf("resume order %v, want original submit order", order)
	}
	mu.Unlock()
	for _, id := range []string{"q1", "q2"} {
		j, _ := m.Get(id)
		if !j.Resumed {
			t.Fatalf("%s not marked resumed", id)
		}
	}

	// Mid-execution job: failed with the resume reason, never re-run.
	r1, ok := m.Get("r1")
	if !ok || r1.State != StateFailed || r1.Reason != ResumeReason || !r1.Resumed {
		t.Fatalf("running-at-crash job %+v", r1)
	}

	// Completed job: result byte-identical across the restart.
	done, ok := m.Get("done")
	if !ok || done.State != StateCompleted || string(done.Result) != `{"v":42}` {
		t.Fatalf("completed job %+v result=%s", done, done.Result)
	}

	if rq, rf := m.Resumed(); rq != 2 || rf != 1 {
		t.Fatalf("Resumed() = %d,%d want 2,1", rq, rf)
	}
}

func TestCrashResumeEmitsEvents(t *testing.T) {
	dir := t.TempDir()
	writeWAL(t, dir,
		walRecord{Op: opJob, Job: &Job{ID: "q", State: StateQueued, Seq: 0}},
		walRecord{Op: opJob, Job: &Job{ID: "r", State: StateRunning, Seq: 1}},
	)
	block := make(chan struct{})
	m, err := New(Config{Dir: dir, Workers: 1}, func(ctx context.Context, j Job) (json.RawMessage, error) {
		<-block
		return nil, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	defer closeNow(t, m)
	defer close(block)

	// The replay transitions are in the ring before any subscriber: a
	// since=0 subscription sees resumed(q) and failed(r).
	replay, _, cancel := m.Subscribe(0)
	defer cancel()
	types := map[string]string{}
	for _, ev := range replay {
		types[ev.Job] = ev.Type
	}
	if types["q"] != EventResumed {
		t.Fatalf("q event %q, want %q (all: %v)", types["q"], EventResumed, replay)
	}
	if types["r"] != EventFailed {
		t.Fatalf("r event %q, want %q", types["r"], EventFailed)
	}
}

func TestRestartLoopDoesNotGrowWAL(t *testing.T) {
	// adopt() compacts after replay, so repeatedly restarting over the same
	// store must not grow the log: the resume transition for the
	// running-at-crash job is folded into one snapshot record.
	dir := t.TempDir()
	writeWAL(t, dir, walRecord{Op: opJob, Job: &Job{ID: "mid", State: StateRunning, Seq: 0}})
	var size int64
	for i := 0; i < 5; i++ {
		m, err := New(Config{Dir: dir, Workers: 1}, okExec)
		if err != nil {
			t.Fatal(err)
		}
		st, err := os.Stat(filepath.Join(dir, walFile))
		if err != nil {
			t.Fatal(err)
		}
		if i == 0 {
			size = st.Size()
		} else if st.Size() != size {
			t.Fatalf("restart %d: wal size %d, first was %d", i, st.Size(), size)
		}
		j, ok := m.Get("mid")
		if !ok || j.State != StateFailed || j.Reason != ResumeReason {
			t.Fatalf("restart %d: %+v", i, j)
		}
		closeNow(t, m)
	}
}

func TestDurableResultsSurviveManyRestarts(t *testing.T) {
	dir := t.TempDir()
	m, err := New(Config{Dir: dir, Workers: 2}, okExec)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		id := idOf("d", i)
		m.Submit(Job{ID: id})
		waitState(t, m, id, StateCompleted)
	}
	closeNow(t, m)
	for restart := 0; restart < 3; restart++ {
		m, err = New(Config{Dir: dir, Workers: 2}, okExec)
		if err != nil {
			t.Fatalf("restart %d: %v", restart, err)
		}
		for i := 0; i < 3; i++ {
			j, ok := m.Get(idOf("d", i))
			if !ok || j.State != StateCompleted || string(j.Result) != `{"ok":true}` {
				t.Fatalf("restart %d: job %d %+v", restart, i, j)
			}
		}
		closeNow(t, m)
	}
}
