package jobs

import (
	"sync"
	"time"
)

// Lifecycle event stream: every FSM transition publishes an Event into a
// bounded ring. Subscribers get a replay of buffered events past a
// sequence number plus a live channel; a slow subscriber never blocks the
// manager — events that don't fit its channel buffer are dropped and
// counted, and the subscriber can recover them by reconnecting with
// `since` set to the last sequence it saw (the NDJSON wire contract in
// internal/server is built on exactly that).
const (
	// EventsSchema names the lifecycle-event wire format (the NDJSON
	// stream header in internal/server carries it, like the trace schema).
	EventsSchema = "tangled-job-events"
	// EventsSchemaVersion is the current event format version.
	EventsSchemaVersion = 1
)

// Event types.
const (
	EventSubmitted = "submitted"
	EventStarted   = "started"
	EventCompleted = "completed"
	EventFailed    = "failed"
	EventCanceled  = "canceled"
	// EventResumed marks a queued job re-admitted from the WAL after a
	// restart (it will still produce started/terminal events as it runs).
	EventResumed = "resumed"
)

// Event is one lifecycle transition.
type Event struct {
	// Seq is the monotonically increasing event number (from 1); it is
	// the `since` replay cursor.
	Seq  uint64    `json:"seq"`
	Time time.Time `json:"time"`
	// Type is the transition: submitted/started/completed/failed/canceled/resumed.
	Type string `json:"type"`
	// Job and Tenant identify the subject.
	Job    string `json:"job"`
	Tenant string `json:"tenant,omitempty"`
	// State is the FSM state after the transition; Reason explains
	// failed/canceled.
	State  State  `json:"state"`
	Reason string `json:"reason,omitempty"`
}

func eventTypeFor(st State) string {
	switch st {
	case StateCompleted:
		return EventCompleted
	case StateFailed:
		return EventFailed
	case StateCanceled:
		return EventCanceled
	default:
		return string(st)
	}
}

// subChanBuf is each subscriber's channel buffer; beyond it live events
// are dropped (recoverable via since-replay).
const subChanBuf = 256

type eventRing struct {
	mu     sync.Mutex
	buf    []Event // ring storage, len == cap once full
	cap    int
	seq    uint64
	subs   map[int]chan Event
	nextID int
	closed bool
	obs    *Obs
}

func newEventRing(capacity int, o *Obs) *eventRing {
	if capacity <= 0 {
		capacity = 1024
	}
	return &eventRing{cap: capacity, subs: make(map[int]chan Event), obs: o}
}

// publish stamps Seq/Time, buffers, and fans out without blocking.
func (r *eventRing) publish(ev Event) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.closed {
		return
	}
	r.seq++
	ev.Seq = r.seq
	if ev.Time.IsZero() {
		ev.Time = time.Now()
	}
	if len(r.buf) < r.cap {
		r.buf = append(r.buf, ev)
	} else {
		copy(r.buf, r.buf[1:])
		r.buf[len(r.buf)-1] = ev
	}
	for _, ch := range r.subs {
		select {
		case ch <- ev:
		default:
			r.obs.incEventsDropped()
		}
	}
}

// subscribe returns buffered events with Seq > since, a live channel for
// later ones, and a cancel func. Replay and registration happen under one
// lock acquisition, so no event can fall between the replay slice and the
// channel. The channel closes on cancel or ring close.
func (r *eventRing) subscribe(since uint64) ([]Event, <-chan Event, func()) {
	r.mu.Lock()
	defer r.mu.Unlock()
	var replay []Event
	for _, ev := range r.buf {
		if ev.Seq > since {
			replay = append(replay, ev)
		}
	}
	ch := make(chan Event, subChanBuf)
	if r.closed {
		close(ch)
		return replay, ch, func() {}
	}
	id := r.nextID
	r.nextID++
	r.subs[id] = ch
	r.obs.setSubscribers(int64(len(r.subs)))
	var once sync.Once
	cancel := func() {
		once.Do(func() {
			r.mu.Lock()
			defer r.mu.Unlock()
			if _, ok := r.subs[id]; ok {
				delete(r.subs, id)
				close(ch)
				r.obs.setSubscribers(int64(len(r.subs)))
			}
		})
	}
	return replay, ch, cancel
}

// close ends the stream: all subscriber channels are closed and further
// publishes are dropped.
func (r *eventRing) close() {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.closed {
		return
	}
	r.closed = true
	for id, ch := range r.subs {
		delete(r.subs, id)
		close(ch)
	}
	r.obs.setSubscribers(0)
}
