package jobs

import "container/heap"

// fairQueue is stride-based weighted fair queuing over tenants. Each
// tenant carries a virtual "pass"; dispatch always picks the active
// tenant with the smallest pass and advances it by 1/weight, so over any
// saturated window tenants receive service proportional to their weights
// regardless of how many jobs each has queued. A tenant that goes idle
// and returns has its pass clamped up to the global virtual time, so it
// cannot bank credit while away. Within a tenant, jobs are a strict
// priority heap: higher Priority first, ties in submission (Seq) order.
//
// All methods are called under the Manager's lock.
type fairQueue struct {
	tenants map[string]*tenantQ
	vtime   float64
	size    int
}

type tenantQ struct {
	name   string
	weight int
	pass   float64
	jobs   jobHeap
}

func newFairQueue() *fairQueue {
	return &fairQueue{tenants: make(map[string]*tenantQ)}
}

// push enqueues a job under its tenant, activating the tenant if idle.
func (q *fairQueue) push(j *Job) {
	t, ok := q.tenants[j.Tenant]
	if !ok {
		t = &tenantQ{name: j.Tenant, weight: 1}
		q.tenants[j.Tenant] = t
	}
	if j.Weight > 0 {
		t.weight = j.Weight
	}
	if t.jobs.Len() == 0 {
		// Re-activation: no banked credit from idle time.
		if t.pass < q.vtime {
			t.pass = q.vtime
		}
	}
	heap.Push(&t.jobs, j)
	q.size++
}

// pop dispatches the next job: minimum-pass active tenant (name as a
// deterministic tie-break), then that tenant's top-priority job. The
// tenant's pass advances by the job's stride (1/weight). Returns nil when
// empty.
func (q *fairQueue) pop() *Job {
	var best *tenantQ
	for _, t := range q.tenants {
		if t.jobs.Len() == 0 {
			continue
		}
		if best == nil || t.pass < best.pass || (t.pass == best.pass && t.name < best.name) {
			best = t
		}
	}
	if best == nil {
		return nil
	}
	j := heap.Pop(&best.jobs).(*Job)
	q.size--
	q.vtime = best.pass
	best.pass += 1.0 / float64(best.weight)
	return j
}

// remove deletes a queued job (cancellation) wherever it sits.
func (q *fairQueue) remove(j *Job) {
	t, ok := q.tenants[j.Tenant]
	if !ok || j.heapIdx < 0 || j.heapIdx >= t.jobs.Len() || t.jobs[j.heapIdx] != j {
		return
	}
	heap.Remove(&t.jobs, j.heapIdx)
	q.size--
}

// depth reports one tenant's queued-job count.
func (q *fairQueue) depth(tenant string) int {
	if t, ok := q.tenants[tenant]; ok {
		return t.jobs.Len()
	}
	return 0
}

// jobHeap orders by Priority (higher first), then Seq (earlier first).
type jobHeap []*Job

func (h jobHeap) Len() int { return len(h) }
func (h jobHeap) Less(a, b int) bool {
	if h[a].Priority != h[b].Priority {
		return h[a].Priority > h[b].Priority
	}
	return h[a].Seq < h[b].Seq
}
func (h jobHeap) Swap(a, b int) {
	h[a], h[b] = h[b], h[a]
	h[a].heapIdx = a
	h[b].heapIdx = b
}
func (h *jobHeap) Push(x any) {
	j := x.(*Job)
	j.heapIdx = len(*h)
	*h = append(*h, j)
}
func (h *jobHeap) Pop() any {
	old := *h
	n := len(old)
	j := old[n-1]
	old[n-1] = nil
	j.heapIdx = -1
	*h = old[:n-1]
	return j
}
