package jobs

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// walLines reads the raw WAL as lines.
func walLines(t *testing.T, dir string) []string {
	t.Helper()
	raw, err := os.ReadFile(filepath.Join(dir, walFile))
	if err != nil {
		t.Fatal(err)
	}
	return strings.Split(strings.TrimRight(string(raw), "\n"), "\n")
}

func TestWALRoundTrip(t *testing.T) {
	dir := t.TempDir()
	m, err := New(Config{Dir: dir, Workers: 1}, okExec)
	if err != nil {
		t.Fatal(err)
	}
	m.Submit(Job{ID: "w1", Tenant: "t", Priority: 2, Spec: json.RawMessage(`{"x":1}`)})
	waitState(t, m, "w1", StateCompleted)
	closeNow(t, m)

	// Reopen: the terminal job survives with its result.
	m2, err := New(Config{Dir: dir, Workers: 1}, okExec)
	if err != nil {
		t.Fatal(err)
	}
	defer closeNow(t, m2)
	j, ok := m2.Get("w1")
	if !ok {
		t.Fatal("job lost across restart")
	}
	if j.State != StateCompleted || string(j.Result) != `{"ok":true}` {
		t.Fatalf("restored %+v result=%s", j, j.Result)
	}
	if j.Tenant != "t" || j.Priority != 2 || string(j.Spec) != `{"x":1}` {
		t.Fatalf("restored metadata %+v", j)
	}
}

func TestWALHeader(t *testing.T) {
	dir := t.TempDir()
	m, err := New(Config{Dir: dir, Workers: 1}, okExec)
	if err != nil {
		t.Fatal(err)
	}
	closeNow(t, m)
	lines := walLines(t, dir)
	var hdr walHeader
	if err := json.Unmarshal([]byte(lines[0]), &hdr); err != nil {
		t.Fatal(err)
	}
	if hdr.Schema != WALSchema || hdr.Version != WALVersion {
		t.Fatalf("header %+v", hdr)
	}
}

func TestWALRefusesAlienSchemaAndNewerVersion(t *testing.T) {
	for _, hdr := range []string{
		`{"schema":"something-else","version":1}`,
		fmt.Sprintf(`{"schema":%q,"version":%d}`, WALSchema, WALVersion+1),
	} {
		dir := t.TempDir()
		if err := os.WriteFile(filepath.Join(dir, walFile), []byte(hdr+"\n"), 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := New(Config{Dir: dir, Workers: 1}, okExec); err == nil {
			t.Fatalf("header %s accepted", hdr)
		}
	}
}

func TestWALTornTail(t *testing.T) {
	dir := t.TempDir()
	m, err := New(Config{Dir: dir, Workers: 1}, okExec)
	if err != nil {
		t.Fatal(err)
	}
	m.Submit(Job{ID: "keep"})
	waitState(t, m, "keep", StateCompleted)
	closeNow(t, m)

	// Simulate a SIGKILL mid-append: a half-written record at the tail.
	f, err := os.OpenFile(filepath.Join(dir, walFile), os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	f.WriteString(`{"op":"job","job":{"id":"torn","sta`)
	f.Close()

	m2, err := New(Config{Dir: dir, Workers: 1}, okExec)
	if err != nil {
		t.Fatalf("torn tail must replay, got %v", err)
	}
	defer closeNow(t, m2)
	if _, ok := m2.Get("keep"); !ok {
		t.Fatal("intact record lost to the torn tail")
	}
	if _, ok := m2.Get("torn"); ok {
		t.Fatal("torn record resurrected")
	}
}

func TestWALTornHeaderIsEmptyStore(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, walFile), []byte(`{"schema":"tangl`), 0o644); err != nil {
		t.Fatal(err)
	}
	m, err := New(Config{Dir: dir, Workers: 1}, okExec)
	if err != nil {
		t.Fatalf("torn header: %v", err)
	}
	defer closeNow(t, m)
	if q, r := m.Depths(); q != 0 || r != 0 {
		t.Fatalf("depths %d/%d from a torn header", q, r)
	}
}

func TestWALCompaction(t *testing.T) {
	dir := t.TempDir()
	m, err := New(Config{Dir: dir, Workers: 1, CompactEvery: 8, Retention: 4}, okExec)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		id := fmt.Sprintf("c%d", i)
		m.Submit(Job{ID: id})
		waitState(t, m, id, StateCompleted)
	}
	closeNow(t, m)

	// After compaction + retention the log is a small snapshot: a header
	// plus one record per retained job, not 40+ transition records.
	lines := walLines(t, dir)
	if len(lines) != 1+4 {
		t.Fatalf("compacted log has %d lines, want 5:\n%s", len(lines), strings.Join(lines, "\n"))
	}
	m2, err := New(Config{Dir: dir, Workers: 1}, okExec)
	if err != nil {
		t.Fatal(err)
	}
	defer closeNow(t, m2)
	if _, ok := m2.Get("c19"); !ok {
		t.Fatal("retained job missing after compaction")
	}
	if _, ok := m2.Get("c0"); ok {
		t.Fatal("evicted job survived compaction")
	}
}

func TestWALEvictErasesJob(t *testing.T) {
	// Retention eviction must reach the disk even without a compaction
	// cycle: the evict record erases the job at replay.
	dir := t.TempDir()
	m, err := New(Config{Dir: dir, Workers: 1, Retention: 1}, okExec)
	if err != nil {
		t.Fatal(err)
	}
	m.Submit(Job{ID: "old"})
	waitState(t, m, "old", StateCompleted)
	m.Submit(Job{ID: "new"})
	waitState(t, m, "new", StateCompleted)
	closeNow(t, m)
	m2, err := New(Config{Dir: dir, Workers: 1}, okExec)
	if err != nil {
		t.Fatal(err)
	}
	defer closeNow(t, m2)
	if _, ok := m2.Get("old"); ok {
		t.Fatal("evicted job came back at replay")
	}
}

func TestManagerWithoutDirIsEphemeral(t *testing.T) {
	m, err := New(Config{Workers: 1}, okExec)
	if err != nil {
		t.Fatal(err)
	}
	m.Submit(Job{ID: "mem"})
	waitState(t, m, "mem", StateCompleted)
	closeNow(t, m)
}

func TestCloseIdempotent(t *testing.T) {
	m, err := New(Config{Workers: 1}, okExec)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), time.Second)
	defer cancel()
	if err := m.Close(ctx); err != nil {
		t.Fatal(err)
	}
	if err := m.Close(ctx); err != nil {
		t.Fatal(err)
	}
}
