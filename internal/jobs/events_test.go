package jobs

import (
	"testing"
	"time"
)

// collect drains events from ch until n are seen or the deadline passes.
func collect(t *testing.T, ch <-chan Event, n int) []Event {
	t.Helper()
	var evs []Event
	deadline := time.After(5 * time.Second)
	for len(evs) < n {
		select {
		case ev, ok := <-ch:
			if !ok {
				t.Fatalf("channel closed after %d/%d events", len(evs), n)
			}
			evs = append(evs, ev)
		case <-deadline:
			t.Fatalf("timed out after %d/%d events", len(evs), n)
		}
	}
	return evs
}

func TestEventOrderPerJob(t *testing.T) {
	m, err := New(Config{Workers: 1}, okExec)
	if err != nil {
		t.Fatal(err)
	}
	defer closeNow(t, m)

	replay, ch, cancel := m.Subscribe(0)
	defer cancel()
	if len(replay) != 0 {
		t.Fatalf("fresh manager replayed %v", replay)
	}
	m.Submit(Job{ID: "e", Tenant: "t"})
	evs := collect(t, ch, 3)
	want := []string{EventSubmitted, EventStarted, EventCompleted}
	for i, ev := range evs {
		if ev.Type != want[i] {
			t.Fatalf("event %d type %q, want %q (all %v)", i, ev.Type, want[i], evs)
		}
		if ev.Job != "e" || ev.Tenant != "t" {
			t.Fatalf("event %d subject %+v", i, ev)
		}
		if ev.Seq != uint64(i+1) {
			t.Fatalf("event %d seq %d, want %d", i, ev.Seq, i+1)
		}
		if ev.Time.IsZero() {
			t.Fatalf("event %d has no timestamp", i)
		}
	}
	if evs[2].State != StateCompleted {
		t.Fatalf("terminal event state %s", evs[2].State)
	}
}

func TestEventsSinceReplay(t *testing.T) {
	m, err := New(Config{Workers: 1}, okExec)
	if err != nil {
		t.Fatal(err)
	}
	defer closeNow(t, m)
	m.Submit(Job{ID: "one"})
	waitState(t, m, "one", StateCompleted)
	m.Submit(Job{ID: "two"})
	waitState(t, m, "two", StateCompleted)

	// 6 events total (3 per job). Resuming from seq 3 replays only job two's.
	replay, _, cancel := m.Subscribe(3)
	defer cancel()
	if len(replay) != 3 {
		t.Fatalf("replayed %d events, want 3: %v", len(replay), replay)
	}
	for i, ev := range replay {
		if ev.Job != "two" {
			t.Fatalf("replay %d is for job %q", i, ev.Job)
		}
		if ev.Seq != uint64(4+i) {
			t.Fatalf("replay %d seq %d", i, ev.Seq)
		}
	}
	// since == latest seq replays nothing.
	none, _, cancel2 := m.Subscribe(6)
	defer cancel2()
	if len(none) != 0 {
		t.Fatalf("since=6 replayed %v", none)
	}
}

func TestEventRingBoundedReplay(t *testing.T) {
	r := newEventRing(4, nil)
	for i := 0; i < 10; i++ {
		r.publish(Event{Type: EventSubmitted, Job: "j"})
	}
	replay, _, cancel := r.subscribe(0)
	defer cancel()
	if len(replay) != 4 {
		t.Fatalf("replayed %d, want ring cap 4", len(replay))
	}
	for i, ev := range replay {
		if ev.Seq != uint64(7+i) {
			t.Fatalf("replay %d seq %d, want %d (oldest evicted)", i, ev.Seq, 7+i)
		}
	}
}

func TestEventRingSlowSubscriberDoesNotBlock(t *testing.T) {
	r := newEventRing(1024, nil)
	_, ch, cancel := r.subscribe(0)
	defer cancel()
	// Never drain: publishes beyond the channel buffer must not block.
	done := make(chan struct{})
	go func() {
		for i := 0; i < subChanBuf+50; i++ {
			r.publish(Event{Type: EventSubmitted})
		}
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("publish blocked on a slow subscriber")
	}
	if len(ch) != subChanBuf {
		t.Fatalf("subscriber buffered %d, want %d", len(ch), subChanBuf)
	}
	// The overflow is recoverable via since-replay.
	last := <-ch
	_ = last
	replay, _, cancel2 := r.subscribe(uint64(subChanBuf))
	defer cancel2()
	if len(replay) != 50 {
		t.Fatalf("since-replay recovered %d dropped events, want 50", len(replay))
	}
}

func TestEventRingCloseEndsSubscribers(t *testing.T) {
	r := newEventRing(8, nil)
	_, ch, cancel := r.subscribe(0)
	defer cancel()
	r.publish(Event{Type: EventSubmitted})
	r.close()
	// Buffered event still delivered, then the channel closes.
	if ev, ok := <-ch; !ok || ev.Seq != 1 {
		t.Fatalf("first recv %+v ok=%v", ev, ok)
	}
	if _, ok := <-ch; ok {
		t.Fatal("channel open after ring close")
	}
	// Publishing after close is a silent no-op; subscribing yields a closed
	// channel plus the buffered history.
	r.publish(Event{Type: EventSubmitted})
	replay, ch2, cancel2 := r.subscribe(0)
	defer cancel2()
	if len(replay) != 1 {
		t.Fatalf("post-close replay %v", replay)
	}
	if _, ok := <-ch2; ok {
		t.Fatal("post-close subscription channel open")
	}
}
