// Package jobs is the asynchronous job subsystem of the serving stack: a
// durable, bounded job store with a write-ahead log, a lifecycle FSM
// (queued → running → completed/failed/canceled), per-tenant weighted fair
// queuing with priorities, crash-resume of queued work, and a bounded
// lifecycle-event ring with streaming subscribers.
//
// The paper's coprocessor model treats every Qat program as a discrete
// submitted unit with a deterministic result — exactly the contract a
// durable job store can checkpoint and replay: a job's spec is a pure
// description of its execution, so re-running a queued job after a crash
// yields a byte-identical outcome. The package is deliberately agnostic
// about what a job *is*: specs and results are opaque JSON documents and
// execution is delegated to an Exec callback, so the serving layer
// (internal/server) owns the wire schema and the farm hook-up while this
// package owns durability, ordering, fairness, and lifecycle.
//
// Durability model: every state transition (submit, start, terminal) is
// appended to an append-only JSONL WAL and fsynced before the transition
// is visible. On restart the WAL is replayed (dedupe by job ID, last
// record wins): terminal jobs keep their results, queued jobs are
// re-admitted in their original submit order (exactly once — the WAL is
// the queue), and jobs that were running when the process died are marked
// failed with a resume reason, because a half-executed job's side effects
// (none, in this system, but the contract is conservative) cannot be
// proven absent. The log is compacted to a snapshot once it accumulates
// enough dead records (wal.go).
//
// Fairness: the scheduler is stride-based weighted fair queuing over
// tenants — each tenant's virtual pass advances by 1/weight per dispatched
// job, and the tenant with the smallest pass runs next — with a strict
// priority heap (higher first, then submit order) inside each tenant
// (fair.go). Two tenants with equal weight therefore complete within a
// small constant factor of each other's throughput under saturation, no
// matter how unbalanced their submission rates are.
package jobs

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"time"
)

// State is a job's position in the lifecycle FSM.
type State string

const (
	// StateQueued means admitted and waiting for a dispatch slot.
	StateQueued State = "queued"
	// StateRunning means handed to the Exec callback.
	StateRunning State = "running"
	// StateCompleted means Exec returned a result and no error.
	StateCompleted State = "completed"
	// StateFailed means Exec returned an error (including a crash-resume
	// of a job that was mid-execution; see Job.Reason).
	StateFailed State = "failed"
	// StateCanceled means the job was canceled before or during execution.
	StateCanceled State = "canceled"
)

// Terminal reports whether the state is final.
func (s State) Terminal() bool {
	return s == StateCompleted || s == StateFailed || s == StateCanceled
}

func (s State) valid() bool {
	switch s {
	case StateQueued, StateRunning, StateCompleted, StateFailed, StateCanceled:
		return true
	}
	return false
}

// ResumeReason is the failure reason stamped on jobs that were running
// when the process died: their partial execution cannot be proven
// side-effect-free, so they are not silently re-run.
const ResumeReason = "server restarted while the job was running; resubmit to re-run"

// Job is one asynchronous execution and its durable record. The Spec and
// Result payloads are opaque JSON owned by the caller (the serving layer
// stores its run request and run result here); everything else is the
// lifecycle this package manages. The JSON encoding of this struct is the
// WAL schema — see wal.go for versioning.
type Job struct {
	// ID is the caller-chosen unique identity; resubmitting an existing ID
	// returns the existing job (idempotent submission).
	ID string `json:"id"`
	// Tenant names the fair-queuing principal ("" is normalized by the
	// serving layer; this package treats it as an ordinary name).
	Tenant string `json:"tenant,omitempty"`
	// Priority orders jobs within a tenant: higher runs first, ties in
	// submit order. It never lets one tenant preempt another — cross-tenant
	// ordering is the weighted fair queue's alone.
	Priority int `json:"priority,omitempty"`
	// Weight is the tenant's fair-queuing weight (<= 0 means 1). The
	// tenant's weight is updated by each submission that sets it.
	Weight int `json:"weight,omitempty"`
	// Spec is the opaque execution description handed to Exec.
	Spec json.RawMessage `json:"spec,omitempty"`

	// State is the FSM position; Reason explains failed/canceled states.
	State  State  `json:"state"`
	Reason string `json:"reason,omitempty"`
	// Result is the opaque outcome document (set on completed jobs, and on
	// failed jobs whose Exec produced a partial/classified result).
	Result json.RawMessage `json:"result,omitempty"`

	// Submitted/Started/Finished are the lifecycle timestamps.
	Submitted time.Time `json:"submitted"`
	Started   time.Time `json:"started,omitempty"`
	Finished  time.Time `json:"finished,omitempty"`

	// Resumed marks a job re-admitted from the WAL after a restart.
	Resumed bool `json:"resumed,omitempty"`
	// Seq is the global admission order, persisted so replay reconstructs
	// the queue in the original order.
	Seq uint64 `json:"seq"`

	// heapIdx is the job's position in its tenant's priority heap while
	// queued (fair.go); -1 otherwise.
	heapIdx int
	// cancelReq marks a running job whose cancellation was requested, so
	// the terminal classifier can distinguish "canceled" from an Exec
	// error that happens to wrap context.Canceled for its own reasons.
	cancelReq bool
}

// Exec executes one job: it receives a snapshot of the job (never the
// manager's live pointer) and a context canceled when the job is canceled
// or the manager is hard-closed. It returns the opaque result document and
// the execution error; a nil error means completed. An error wrapping
// context.Canceled after a cancel request classifies as canceled, any
// other error as failed — in both cases a non-nil result is kept on the
// job record.
type Exec func(ctx context.Context, j Job) (json.RawMessage, error)

// Config parameterizes a Manager.
type Config struct {
	// Dir is the durable store directory; "" disables persistence (the
	// manager is then a purely in-memory queue with the same API).
	Dir string
	// Workers bounds concurrently executing jobs; <= 0 means GOMAXPROCS.
	Workers int
	// QueueLimit bounds queued+running jobs; beyond it Submit returns
	// ErrQueueFull. <= 0 means 1024.
	QueueLimit int
	// Retention bounds retained terminal jobs; the oldest are evicted
	// (and erased from the WAL at the next compaction). <= 0 means 4096.
	Retention int
	// EventBuf bounds the lifecycle-event replay ring. <= 0 means 1024.
	EventBuf int
	// CompactEvery triggers WAL compaction after this many appended
	// records. <= 0 means 4096.
	CompactEvery int
	// Obs, when non-nil, receives the jobs metric family (obs.go).
	Obs *Obs
}

func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.QueueLimit <= 0 {
		c.QueueLimit = 1024
	}
	if c.Retention <= 0 {
		c.Retention = 4096
	}
	if c.EventBuf <= 0 {
		c.EventBuf = 1024
	}
	if c.CompactEvery <= 0 {
		c.CompactEvery = 4096
	}
	return c
}

// Submission errors.
var (
	// ErrQueueFull is returned by Submit when queued+running jobs are at
	// the configured bound; the serving layer turns it into a 429.
	ErrQueueFull = errors.New("jobs: queue full")
	// ErrDraining is returned by Submit once Close has begun.
	ErrDraining = errors.New("jobs: manager is draining")
	// ErrNotFound is returned by Cancel for an unknown job ID.
	ErrNotFound = errors.New("jobs: no such job")
)

// Manager owns the job store, the WAL, the fair queue, the dispatcher
// pool, and the event ring. Construct with New; stop with Close. Safe for
// concurrent use.
type Manager struct {
	cfg  Config
	exec Exec

	mu       sync.Mutex
	cond     *sync.Cond
	jobs     map[string]*Job
	term     []string // terminal job IDs in retirement order (retention FIFO)
	fq       *fairQueue
	cancels  map[string]context.CancelFunc
	runningN int
	seq      uint64
	draining bool
	closed   bool

	wal    *wal
	events *eventRing
	wg     sync.WaitGroup

	// resumedQueued / resumedFailed count the restart-replay outcomes, for
	// tests and the serving layer's health surface.
	resumedQueued, resumedFailed int
}

// New builds a manager, replaying the WAL in cfg.Dir (when set): terminal
// jobs are restored with their results, queued jobs are re-admitted in
// submit order, and jobs left running by a crash are marked failed with
// ResumeReason. The dispatcher pool starts immediately.
func New(cfg Config, exec Exec) (*Manager, error) {
	cfg = cfg.withDefaults()
	if exec == nil {
		return nil, errors.New("jobs: nil Exec")
	}
	m := &Manager{
		cfg:     cfg,
		exec:    exec,
		jobs:    make(map[string]*Job),
		fq:      newFairQueue(),
		cancels: make(map[string]context.CancelFunc),
		events:  newEventRing(cfg.EventBuf, cfg.Obs),
	}
	m.cond = sync.NewCond(&m.mu)
	if cfg.Dir != "" {
		w, replayed, err := openWAL(cfg.Dir)
		if err != nil {
			return nil, err
		}
		m.wal = w
		m.adopt(replayed)
	}
	for i := 0; i < cfg.Workers; i++ {
		m.wg.Add(1)
		go m.worker()
	}
	return m, nil
}

// adopt rebuilds in-memory state from the WAL replay. Called before the
// dispatcher pool starts, so no locking is needed; WAL appends for the
// resume transitions are still written (and the log compacted) so the
// on-disk truth matches memory before the first new submission.
func (m *Manager) adopt(replayed []*Job) {
	now := time.Now()
	for _, j := range replayed {
		if j.Seq >= m.seq {
			m.seq = j.Seq + 1
		}
		j.heapIdx = -1
		switch {
		case j.State.Terminal():
			m.jobs[j.ID] = j
			m.term = append(m.term, j.ID)
		case j.State == StateRunning:
			// Mid-execution at crash: conservatively failed, never re-run.
			j.State = StateFailed
			j.Reason = ResumeReason
			j.Finished = now
			j.Resumed = true
			m.jobs[j.ID] = j
			m.term = append(m.term, j.ID)
			m.walAppend(walRecord{Op: opState, ID: j.ID, State: j.State, Reason: j.Reason, Time: now})
			m.events.publish(Event{Type: EventFailed, Job: j.ID, Tenant: j.Tenant, State: j.State, Reason: j.Reason})
			m.resumedFailed++
			m.cfg.Obs.countState(StateFailed)
			m.cfg.Obs.incResumeFailed()
		default: // queued: re-admit exactly once, in original order
			j.State = StateQueued
			j.Resumed = true
			m.jobs[j.ID] = j
			m.fq.push(j)
			m.cfg.Obs.setQueueDepth(j.Tenant, m.fq.depth(j.Tenant))
			m.events.publish(Event{Type: EventResumed, Job: j.ID, Tenant: j.Tenant, State: j.State})
			m.resumedQueued++
			m.cfg.Obs.incResumed()
		}
	}
	m.enforceRetention()
	// Snapshot immediately: the resume transitions above and any evictions
	// are folded in, so a crash loop cannot grow the log without bound.
	m.compactLocked()
}

// Submit admits one job. The job must carry a non-empty ID; Tenant,
// Priority, Weight and Spec are the caller's. Resubmitting an existing ID
// returns the existing record with existed=true (idempotent submission —
// the WAL replay dedupes the same way). The submit record is fsynced
// before the job is visible or schedulable.
func (m *Manager) Submit(j Job) (Job, bool, error) {
	if j.ID == "" {
		return Job{}, false, errors.New("jobs: empty job ID")
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.draining {
		return Job{}, false, ErrDraining
	}
	if existing, ok := m.jobs[j.ID]; ok {
		return existing.snapshot(), true, nil
	}
	if m.fq.size+m.runningN >= m.cfg.QueueLimit {
		m.cfg.Obs.incRejected()
		return Job{}, false, ErrQueueFull
	}
	if j.Weight <= 0 {
		j.Weight = 1
	}
	j.State = StateQueued
	j.Submitted = time.Now()
	j.Seq = m.seq
	m.seq++
	j.heapIdx = -1
	jp := &j
	if err := m.walAppend(walRecord{Op: opJob, Job: jp}); err != nil {
		return Job{}, false, fmt.Errorf("jobs: wal append: %w", err)
	}
	m.jobs[j.ID] = jp
	m.fq.push(jp)
	m.cfg.Obs.setQueueDepth(j.Tenant, m.fq.depth(j.Tenant))
	m.cfg.Obs.countState(StateQueued)
	m.events.publish(Event{Type: EventSubmitted, Job: j.ID, Tenant: j.Tenant, State: StateQueued})
	m.cond.Signal()
	return jp.snapshot(), false, nil
}

// Get returns a copy of the job record.
func (m *Manager) Get(id string) (Job, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	j, ok := m.jobs[id]
	if !ok {
		return Job{}, false
	}
	return j.snapshot(), true
}

// Cancel requests cancellation: a queued job transitions to canceled
// immediately (and is removed from the queue); a running job has its
// context canceled and transitions when Exec returns; terminal jobs are
// unchanged (idempotent). The returned snapshot is the post-call state —
// still "running" for an in-flight job whose cancellation is now pending.
func (m *Manager) Cancel(id string) (Job, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	j, ok := m.jobs[id]
	if !ok {
		return Job{}, ErrNotFound
	}
	switch j.State {
	case StateQueued:
		m.fq.remove(j)
		m.cfg.Obs.setQueueDepth(j.Tenant, m.fq.depth(j.Tenant))
		m.terminalLocked(j, StateCanceled, "canceled before start")
	case StateRunning:
		j.cancelReq = true
		if c := m.cancels[id]; c != nil {
			c()
		}
	}
	return j.snapshot(), nil
}

// Depths reports the queued and running job counts (the healthz numbers).
func (m *Manager) Depths() (queued, running int) {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.fq.size, m.runningN
}

// Resumed reports the restart-replay outcome counts: queued jobs
// re-admitted and running jobs failed with ResumeReason.
func (m *Manager) Resumed() (queued, failed int) {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.resumedQueued, m.resumedFailed
}

// Subscribe returns buffered lifecycle events with Seq > since, a live
// channel for subsequent ones, and a cancel function the caller must
// invoke. The channel is closed by cancel or by Close.
func (m *Manager) Subscribe(since uint64) ([]Event, <-chan Event, func()) {
	return m.events.subscribe(since)
}

// worker is one dispatcher: it pulls the fair queue and runs Exec.
func (m *Manager) worker() {
	defer m.wg.Done()
	for {
		m.mu.Lock()
		for !m.draining && m.fq.size == 0 {
			m.cond.Wait()
		}
		if m.draining {
			m.mu.Unlock()
			return
		}
		j := m.fq.pop()
		m.cfg.Obs.setQueueDepth(j.Tenant, m.fq.depth(j.Tenant))
		j.State = StateRunning
		j.Started = time.Now()
		// The job context is detached: jobs outlive the HTTP request that
		// submitted them by design. Cancel comes from DELETE or hard-close.
		ctx, cancel := context.WithCancel(context.Background())
		m.cancels[j.ID] = cancel
		m.runningN++
		m.cfg.Obs.setRunning(int64(m.runningN))
		m.walAppend(walRecord{Op: opState, ID: j.ID, State: StateRunning, Time: j.Started})
		m.cfg.Obs.countState(StateRunning)
		m.events.publish(Event{Type: EventStarted, Job: j.ID, Tenant: j.Tenant, State: StateRunning})
		snap := j.snapshot()
		m.mu.Unlock()

		result, err := m.exec(ctx, snap)

		m.mu.Lock()
		cancel()
		delete(m.cancels, j.ID)
		m.runningN--
		m.cfg.Obs.setRunning(int64(m.runningN))
		j.Result = result
		switch {
		case err == nil:
			m.terminalLocked(j, StateCompleted, "")
		case j.cancelReq && errors.Is(err, context.Canceled):
			m.terminalLocked(j, StateCanceled, "canceled while running")
		case errors.Is(err, context.Canceled):
			// Canceled without a request: the manager was hard-closed.
			m.terminalLocked(j, StateCanceled, "server shut down while the job was running")
		default:
			m.terminalLocked(j, StateFailed, err.Error())
		}
		m.mu.Unlock()
	}
}

// terminalLocked applies a terminal transition: WAL append (fsynced),
// event publication, retention enforcement. Caller holds m.mu.
func (m *Manager) terminalLocked(j *Job, st State, reason string) {
	j.State = st
	j.Reason = reason
	j.Finished = time.Now()
	m.walAppend(walRecord{Op: opState, ID: j.ID, State: st, Reason: reason, Result: j.Result, Time: j.Finished})
	m.cfg.Obs.countState(st)
	m.events.publish(Event{Type: eventTypeFor(st), Job: j.ID, Tenant: j.Tenant, State: st, Reason: reason})
	m.term = append(m.term, j.ID)
	m.enforceRetention()
}

// enforceRetention evicts the oldest terminal jobs beyond the bound.
// Caller holds m.mu (or runs pre-start from adopt).
func (m *Manager) enforceRetention() {
	for len(m.term) > m.cfg.Retention {
		id := m.term[0]
		// Reslice without retaining the dead prefix of the backing array.
		m.term = append([]string(nil), m.term[1:]...)
		if _, ok := m.jobs[id]; ok {
			delete(m.jobs, id)
			m.walAppend(walRecord{Op: opEvict, ID: id})
			m.cfg.Obs.incEvicted()
		}
	}
}

// walAppend appends one fsynced record and triggers compaction past the
// threshold. Caller holds m.mu (or runs pre-start). A nil WAL (no Dir) is
// a no-op.
func (m *Manager) walAppend(rec walRecord) error {
	if m.wal == nil {
		return nil
	}
	if err := m.wal.append(rec); err != nil {
		return err
	}
	m.cfg.Obs.setWAL(m.wal.records, m.wal.bytes)
	if m.wal.records >= m.cfg.CompactEvery {
		m.compactLocked()
	}
	return nil
}

// compactLocked rewrites the WAL as a snapshot of the live job set.
func (m *Manager) compactLocked() {
	if m.wal == nil {
		return
	}
	all := make([]*Job, 0, len(m.jobs))
	for _, j := range m.jobs {
		all = append(all, j)
	}
	if err := m.wal.compact(all); err == nil {
		m.cfg.Obs.incCompactions()
	}
	m.cfg.Obs.setWAL(m.wal.records, m.wal.bytes)
}

// Close drains the manager: submissions are refused, queued jobs stay
// queued (persisted — they resume on the next start), running jobs finish.
// ctx bounds the wait; on expiry the running jobs' contexts are canceled
// and the wait continues until Exec returns. The WAL is compacted and
// closed last, so the final on-disk state is one clean snapshot.
func (m *Manager) Close(ctx context.Context) error {
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return nil
	}
	m.closed = true
	m.draining = true
	m.cond.Broadcast()
	m.mu.Unlock()

	done := make(chan struct{})
	go func() { m.wg.Wait(); close(done) }()
	var err error
	select {
	case <-done:
	case <-ctx.Done():
		err = ctx.Err()
		m.mu.Lock()
		for _, c := range m.cancels {
			c()
		}
		m.mu.Unlock()
		<-done
	}

	m.mu.Lock()
	m.events.close()
	if m.wal != nil {
		m.compactLocked()
		m.wal.close()
		m.wal = nil
	}
	m.mu.Unlock()
	return err
}

// snapshot returns a value copy safe to hand out. The RawMessage payloads
// are shared but treated as immutable by contract.
func (j *Job) snapshot() Job {
	c := *j
	c.heapIdx = -1
	return c
}
