package jobs

import (
	"bytes"
	"encoding/json"
	"fmt"
	"testing"
	"time"
)

// FuzzWALReplay asserts two properties over arbitrary log bytes:
//
//  1. replayWAL never panics — any on-disk corruption degrades to an error
//     or a truncated-but-valid job set, never a crash at startup.
//  2. Snapshotting is a fixed point: encoding the replayed set the way
//     compaction does and replaying that must reproduce the same set. This
//     is the invariant that makes compaction safe to run at any moment.
func FuzzWALReplay(f *testing.F) {
	hdr := func() string {
		b, _ := json.Marshal(walHeader{Schema: WALSchema, Version: WALVersion})
		return string(b) + "\n"
	}()
	f.Add([]byte(nil))
	f.Add([]byte(hdr))
	f.Add([]byte(hdr + `{"op":"job","job":{"id":"a","state":"queued","seq":0}}` + "\n"))
	f.Add([]byte(hdr +
		`{"op":"job","job":{"id":"a","state":"queued","seq":0}}` + "\n" +
		`{"op":"state","id":"a","state":"running","time":"2026-01-02T03:04:05Z"}` + "\n" +
		`{"op":"state","id":"a","state":"completed","result":{"v":1},"time":"2026-01-02T03:04:06Z"}` + "\n" +
		`{"op":"job","job":{"id":"b","state":"queued","seq":1}}` + "\n" +
		`{"op":"evict","id":"a"}` + "\n"))
	f.Add([]byte(hdr + `{"op":"job","job":{"id":"torn","sta`))
	f.Add([]byte(`{"schema":"alien","version":1}` + "\n"))
	f.Add([]byte(hdr + `{"op":"state","id":"ghost","state":"completed"}` + "\n"))
	f.Add([]byte(hdr + `{"op":"job","job":{"id":"x","state":"bogus","seq":9}}` + "\n"))

	f.Fuzz(func(t *testing.T, raw []byte) {
		jobs, err := replayWAL(raw)
		if err != nil {
			return // refused log: fine, as long as it didn't panic
		}
		seen := map[string]bool{}
		for _, j := range jobs {
			if j.ID == "" || !j.State.valid() {
				t.Fatalf("replay admitted invalid job %+v", j)
			}
			if seen[j.ID] {
				t.Fatalf("replay yielded duplicate ID %q", j.ID)
			}
			seen[j.ID] = true
		}

		// Re-encode as a compaction snapshot and replay again.
		var buf bytes.Buffer
		enc := json.NewEncoder(&buf)
		if err := enc.Encode(walHeader{Schema: WALSchema, Version: WALVersion}); err != nil {
			t.Fatal(err)
		}
		for _, j := range jobs {
			snap := j.snapshot()
			if err := enc.Encode(walRecord{Op: opJob, Job: &snap}); err != nil {
				t.Fatal(err)
			}
		}
		again, err := replayWAL(buf.Bytes())
		if err != nil {
			t.Fatalf("snapshot of a valid replay refused: %v", err)
		}
		if len(again) != len(jobs) {
			t.Fatalf("fixed point broken: %d jobs -> %d", len(jobs), len(again))
		}
		for i := range jobs {
			if diff := jobDiff(jobs[i], again[i]); diff != "" {
				t.Fatalf("job %d changed across snapshot: %s", i, diff)
			}
		}
	})
}

// jobDiff compares the durable fields of two jobs.
func jobDiff(a, b *Job) string {
	norm := func(j *Job) string {
		c := j.snapshot()
		// Timestamps round-trip through RFC3339 JSON; compare at that
		// precision so monotonic-clock remnants don't flag a false diff.
		c.Submitted = c.Submitted.Round(0).UTC().Truncate(time.Nanosecond)
		out, _ := json.Marshal(&c)
		return string(out)
	}
	if x, y := norm(a), norm(b); x != y {
		return fmt.Sprintf("%s != %s", x, y)
	}
	return ""
}
