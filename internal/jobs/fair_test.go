package jobs

import (
	"context"
	"encoding/json"
	"testing"
	"time"
)

// gatedOrderManager builds a 1-worker manager whose exec blocks until the
// gate closes and reports each executed job ID in dispatch order.
func gatedOrderManager(t *testing.T, n int) (*Manager, chan struct{}, chan string) {
	t.Helper()
	gate := make(chan struct{})
	order := make(chan string, n)
	m, err := New(Config{Workers: 1}, func(ctx context.Context, j Job) (json.RawMessage, error) {
		<-gate
		order <- j.ID
		return nil, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		m.Close(ctx)
	})
	return m, gate, order
}

// TestFairnessEqualWeights is the acceptance criterion: two equal-weight
// tenants under saturation each complete within 2x of each other's
// throughput. One tenant floods 30 jobs before the other submits 15; a
// FIFO would starve tenant B for the whole flood, while weighted fair
// queuing must interleave them ~1:1 from the moment B arrives.
func TestFairnessEqualWeights(t *testing.T) {
	const perB = 15
	m, gate, order := gatedOrderManager(t, 2*perB+perB)

	// Tenant A floods first — every A job has an earlier Seq than any B.
	for i := 0; i < 2*perB; i++ {
		if _, _, err := m.Submit(Job{ID: idOf("a", i), Tenant: "A"}); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < perB; i++ {
		if _, _, err := m.Submit(Job{ID: idOf("b", i), Tenant: "B"}); err != nil {
			t.Fatal(err)
		}
	}
	close(gate)

	// Observe the first 2*perB dispatches: both tenants are saturated for
	// that whole window (B has perB jobs and can appear at most perB times).
	counts := map[byte]int{}
	for i := 0; i < 2*perB; i++ {
		select {
		case id := <-order:
			counts[id[0]]++
		case <-time.After(10 * time.Second):
			t.Fatalf("stalled after %d dispatches (counts %v)", i, counts)
		}
	}
	a, b := counts['a'], counts['b']
	if a == 0 || b == 0 {
		t.Fatalf("a tenant was starved: a=%d b=%d", a, b)
	}
	if a > 2*b || b > 2*a {
		t.Fatalf("equal-weight tenants diverged beyond 2x: a=%d b=%d", a, b)
	}
}

// TestFairnessWeighted: a weight-3 tenant should receive ~3x the service
// of a weight-1 tenant over a saturated window.
func TestFairnessWeighted(t *testing.T) {
	const n = 40
	m, gate, order := gatedOrderManager(t, 2*n)
	for i := 0; i < n; i++ {
		if _, _, err := m.Submit(Job{ID: idOf("h", i), Tenant: "heavy", Weight: 3}); err != nil {
			t.Fatal(err)
		}
		if _, _, err := m.Submit(Job{ID: idOf("l", i), Tenant: "light", Weight: 1}); err != nil {
			t.Fatal(err)
		}
	}
	close(gate)
	counts := map[byte]int{}
	for i := 0; i < n; i++ { // first half: both tenants still saturated
		select {
		case id := <-order:
			counts[id[0]]++
		case <-time.After(10 * time.Second):
			t.Fatalf("stalled after %d dispatches", i)
		}
	}
	h, l := counts['h'], counts['l']
	if l == 0 {
		t.Fatalf("light tenant starved: h=%d l=%d", h, l)
	}
	ratio := float64(h) / float64(l)
	if ratio < 2.0 || ratio > 4.5 {
		t.Fatalf("weight-3:1 service ratio %.2f (h=%d l=%d), want ~3", ratio, h, l)
	}
}

// TestFairQueueReactivationNoBankedCredit: a tenant that sat idle must not
// accumulate virtual-time credit and then monopolize the queue.
func TestFairQueueReactivationNoBankedCredit(t *testing.T) {
	q := newFairQueue()
	seq := uint64(0)
	push := func(tenant string) *Job {
		j := &Job{ID: idOf(tenant, int(seq)), Tenant: tenant, Weight: 1, Seq: seq, heapIdx: -1}
		seq++
		q.push(j)
		return j
	}
	// Tenant A runs alone for a while, advancing vtime.
	for i := 0; i < 10; i++ {
		push("a")
		if got := q.pop(); got.Tenant != "a" {
			t.Fatalf("pop %d: tenant %s", i, got.Tenant)
		}
	}
	// B arrives late; its pass clamps to vtime, so service alternates
	// instead of B burning a banked deficit.
	for i := 0; i < 4; i++ {
		push("a")
		push("b")
	}
	counts := map[string]int{}
	for i := 0; i < 8; i++ {
		counts[q.pop().Tenant]++
	}
	if counts["a"] != 4 || counts["b"] != 4 {
		t.Fatalf("post-reactivation split %v, want 4/4", counts)
	}
}

func TestFairQueueRemove(t *testing.T) {
	q := newFairQueue()
	a := &Job{ID: "a", Seq: 0, Weight: 1, heapIdx: -1}
	b := &Job{ID: "b", Seq: 1, Weight: 1, heapIdx: -1}
	c := &Job{ID: "c", Seq: 2, Weight: 1, Priority: 5, heapIdx: -1}
	q.push(a)
	q.push(b)
	q.push(c)
	q.remove(b)
	if q.size != 2 {
		t.Fatalf("size %d after remove", q.size)
	}
	if got := q.pop(); got != c { // priority 5 first
		t.Fatalf("pop %q, want c", got.ID)
	}
	if got := q.pop(); got != a {
		t.Fatalf("pop %q, want a", got.ID)
	}
	if q.pop() != nil {
		t.Fatal("pop from empty queue")
	}
	// Removing an already-popped job is a no-op.
	q.remove(a)
}

func idOf(prefix string, i int) string {
	const digits = "0123456789"
	if i < 10 {
		return prefix + "-" + digits[i:i+1]
	}
	return prefix + "-" + digits[i/10:i/10+1] + digits[i%10:i%10+1]
}
