package jobs

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"sync/atomic"
	"testing"
	"time"
)

// okExec completes immediately with a fixed document.
func okExec(ctx context.Context, j Job) (json.RawMessage, error) {
	return json.RawMessage(`{"ok":true}`), nil
}

// waitState polls until the job reaches want or the deadline passes.
func waitState(t *testing.T, m *Manager, id string, want State) Job {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if j, ok := m.Get(id); ok && j.State == want {
			return j
		}
		time.Sleep(time.Millisecond)
	}
	j, ok := m.Get(id)
	t.Fatalf("job %s never reached %s (now %+v, found=%v)", id, want, j.State, ok)
	return Job{}
}

func closeNow(t *testing.T, m *Manager) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := m.Close(ctx); err != nil {
		t.Fatalf("close: %v", err)
	}
}

func TestLifecycleCompleted(t *testing.T) {
	m, err := New(Config{Workers: 2}, okExec)
	if err != nil {
		t.Fatal(err)
	}
	defer closeNow(t, m)

	j, existed, err := m.Submit(Job{ID: "a", Spec: json.RawMessage(`{"p":1}`)})
	if err != nil || existed {
		t.Fatalf("submit: %v existed=%v", err, existed)
	}
	if j.State != StateQueued || j.Seq != 0 || j.Weight != 1 {
		t.Fatalf("submitted record %+v", j)
	}
	fin := waitState(t, m, "a", StateCompleted)
	if string(fin.Result) != `{"ok":true}` {
		t.Fatalf("result %s", fin.Result)
	}
	if fin.Started.IsZero() || fin.Finished.IsZero() {
		t.Fatalf("missing timestamps: %+v", fin)
	}
	if !fin.State.Terminal() {
		t.Fatal("completed must be terminal")
	}
}

func TestLifecycleFailed(t *testing.T) {
	m, err := New(Config{Workers: 1}, func(ctx context.Context, j Job) (json.RawMessage, error) {
		return json.RawMessage(`{"partial":true}`), errors.New("boom")
	})
	if err != nil {
		t.Fatal(err)
	}
	defer closeNow(t, m)
	m.Submit(Job{ID: "f"})
	fin := waitState(t, m, "f", StateFailed)
	if fin.Reason != "boom" {
		t.Fatalf("reason %q", fin.Reason)
	}
	if string(fin.Result) != `{"partial":true}` {
		t.Fatalf("failed job should keep its partial result, got %s", fin.Result)
	}
}

func TestSubmitIdempotent(t *testing.T) {
	block := make(chan struct{})
	m, err := New(Config{Workers: 1}, func(ctx context.Context, j Job) (json.RawMessage, error) {
		<-block
		return nil, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	defer closeNow(t, m)
	defer close(block)

	first, existed, err := m.Submit(Job{ID: "dup", Spec: json.RawMessage(`1`)})
	if err != nil || existed {
		t.Fatalf("first submit: %v %v", err, existed)
	}
	again, existed, err := m.Submit(Job{ID: "dup", Spec: json.RawMessage(`2`)})
	if err != nil || !existed {
		t.Fatalf("resubmit: %v existed=%v", err, existed)
	}
	if string(again.Spec) != string(first.Spec) {
		t.Fatalf("resubmit replaced the spec: %s", again.Spec)
	}
}

func TestSubmitValidation(t *testing.T) {
	m, err := New(Config{Workers: 1}, okExec)
	if err != nil {
		t.Fatal(err)
	}
	defer closeNow(t, m)
	if _, _, err := m.Submit(Job{}); err == nil {
		t.Fatal("empty ID accepted")
	}
}

func TestQueueFull(t *testing.T) {
	block := make(chan struct{})
	m, err := New(Config{Workers: 1, QueueLimit: 2}, func(ctx context.Context, j Job) (json.RawMessage, error) {
		<-block
		return nil, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	defer closeNow(t, m)
	defer close(block)

	// Two admitted (one will be running, one queued), third refused.
	for i := 0; i < 2; i++ {
		if _, _, err := m.Submit(Job{ID: fmt.Sprintf("q%d", i)}); err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
	}
	if _, _, err := m.Submit(Job{ID: "q2"}); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("got %v, want ErrQueueFull", err)
	}
}

func TestCancelQueued(t *testing.T) {
	block := make(chan struct{})
	m, err := New(Config{Workers: 1}, func(ctx context.Context, j Job) (json.RawMessage, error) {
		<-block
		return nil, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	defer closeNow(t, m)
	defer close(block)

	m.Submit(Job{ID: "running"})
	waitState(t, m, "running", StateRunning)
	m.Submit(Job{ID: "victim"})
	got, err := m.Cancel("victim")
	if err != nil {
		t.Fatal(err)
	}
	if got.State != StateCanceled {
		t.Fatalf("state %s, want canceled", got.State)
	}
	if q, _ := m.Depths(); q != 0 {
		t.Fatalf("queued depth %d after cancel", q)
	}
	// Canceling a terminal job is a no-op, not an error.
	if again, err := m.Cancel("victim"); err != nil || again.State != StateCanceled {
		t.Fatalf("re-cancel: %+v %v", again, err)
	}
}

func TestCancelRunning(t *testing.T) {
	started := make(chan struct{})
	m, err := New(Config{Workers: 1}, func(ctx context.Context, j Job) (json.RawMessage, error) {
		close(started)
		<-ctx.Done()
		return nil, ctx.Err()
	})
	if err != nil {
		t.Fatal(err)
	}
	defer closeNow(t, m)

	m.Submit(Job{ID: "r"})
	<-started
	if got, err := m.Cancel("r"); err != nil || got.State != StateRunning {
		t.Fatalf("cancel returned %+v %v (should still be running until exec returns)", got, err)
	}
	fin := waitState(t, m, "r", StateCanceled)
	if fin.Reason == "" {
		t.Fatal("canceled-while-running should carry a reason")
	}
}

func TestCancelUnknown(t *testing.T) {
	m, err := New(Config{Workers: 1}, okExec)
	if err != nil {
		t.Fatal(err)
	}
	defer closeNow(t, m)
	if _, err := m.Cancel("ghost"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("got %v, want ErrNotFound", err)
	}
}

func TestCloseRefusesSubmitAndWaitsRunning(t *testing.T) {
	release := make(chan struct{})
	started := make(chan struct{})
	var finished atomic.Bool
	m, err := New(Config{Workers: 1}, func(ctx context.Context, j Job) (json.RawMessage, error) {
		close(started)
		<-release
		finished.Store(true)
		return nil, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	m.Submit(Job{ID: "slow"})
	<-started

	done := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		done <- m.Close(ctx)
	}()
	// Close must be draining (refusing submits) while the job still runs.
	deadline := time.Now().Add(2 * time.Second)
	for {
		_, _, err := m.Submit(Job{ID: "late"})
		if errors.Is(err, ErrDraining) {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("submit during close: %v, want ErrDraining", err)
		}
		time.Sleep(time.Millisecond)
	}
	close(release)
	if err := <-done; err != nil {
		t.Fatalf("close: %v", err)
	}
	if !finished.Load() {
		t.Fatal("close returned before the running job finished")
	}
}

func TestCloseExpiredContextCancelsRunning(t *testing.T) {
	started := make(chan struct{})
	m, err := New(Config{Workers: 1}, func(ctx context.Context, j Job) (json.RawMessage, error) {
		close(started)
		<-ctx.Done()
		return nil, ctx.Err()
	})
	if err != nil {
		t.Fatal(err)
	}
	m.Submit(Job{ID: "hung"})
	<-started
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := m.Close(ctx); !errors.Is(err, context.Canceled) {
		t.Fatalf("close: %v, want context.Canceled", err)
	}
	// The hung job was canceled without a cancel request: recorded as
	// canceled with the shutdown reason.
	j, ok := m.Get("hung")
	if !ok || j.State != StateCanceled {
		t.Fatalf("hung job %+v, want canceled", j)
	}
}

func TestRetentionEvictsOldest(t *testing.T) {
	m, err := New(Config{Workers: 1, Retention: 2}, okExec)
	if err != nil {
		t.Fatal(err)
	}
	defer closeNow(t, m)
	for i := 0; i < 5; i++ {
		id := fmt.Sprintf("r%d", i)
		m.Submit(Job{ID: id})
		waitState(t, m, id, StateCompleted)
	}
	if _, ok := m.Get("r0"); ok {
		t.Fatal("oldest terminal job survived a retention bound of 2")
	}
	if _, ok := m.Get("r4"); !ok {
		t.Fatal("newest terminal job evicted")
	}
}

func TestPriorityOrderWithinTenant(t *testing.T) {
	block := make(chan struct{})
	var order []string
	ordered := make(chan string, 8)
	m, err := New(Config{Workers: 1}, func(ctx context.Context, j Job) (json.RawMessage, error) {
		<-block
		ordered <- j.ID
		return nil, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	defer closeNow(t, m)

	// First job occupies the lone worker while the rest queue up.
	m.Submit(Job{ID: "warm"})
	waitState(t, m, "warm", StateRunning)
	m.Submit(Job{ID: "low-1", Priority: 1})
	m.Submit(Job{ID: "high", Priority: 9})
	m.Submit(Job{ID: "low-2", Priority: 1})
	close(block)
	for i := 0; i < 4; i++ {
		order = append(order, <-ordered)
	}
	want := []string{"warm", "high", "low-1", "low-2"}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("execution order %v, want %v", order, want)
		}
	}
}
