package jobs

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"time"
)

// WAL format: one JSON document per line. The first line is a header
// identifying the schema and version (mirroring the trace-ring JSONL
// discipline in internal/obs); every subsequent line is a walRecord.
// Replay is tolerant of a torn tail — a SIGKILL can truncate the final
// line mid-write, so replay stops at the first unparseable line instead
// of failing. Versioning: a reader refuses a header whose schema name
// differs; a higher version than it knows is also refused (the format is
// fsynced state, not a best-effort cache, so silently dropping fields is
// not acceptable).
const (
	// WALSchema names the on-disk jobs log format.
	WALSchema = "tangled-jobs-wal"
	// WALVersion is the current format version.
	WALVersion = 1
	// walFile is the log's file name inside the store directory.
	walFile = "jobs.wal"
)

// Record ops.
const (
	// opJob carries a full job document (submission, or one compacted
	// snapshot entry). A later opJob for the same ID replaces the earlier.
	opJob = "job"
	// opState transitions an existing job: State, Reason, Result, Time.
	opState = "state"
	// opEvict erases a job from the store (retention bound reached).
	opEvict = "evict"
)

// walHeader is the first line of the log.
type walHeader struct {
	Schema  string `json:"schema"`
	Version int    `json:"version"`
}

// walRecord is every subsequent line.
type walRecord struct {
	Op     string          `json:"op"`
	Job    *Job            `json:"job,omitempty"`
	ID     string          `json:"id,omitempty"`
	State  State           `json:"state,omitempty"`
	Reason string          `json:"reason,omitempty"`
	Result json.RawMessage `json:"result,omitempty"`
	Time   time.Time       `json:"time,omitempty"`
}

// wal is the append-only log handle. Not safe for concurrent use; the
// Manager serializes access under its lock.
type wal struct {
	dir     string
	path    string
	f       *os.File
	records int   // records appended since the last compaction
	bytes   int64 // current file size
}

// openWAL opens (creating if absent) the log in dir, replays the existing
// records into an ordered job list, and leaves the file positioned for
// appending. The returned jobs are sorted by Seq (submission order).
func openWAL(dir string) (*wal, []*Job, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, nil, fmt.Errorf("jobs: store dir: %w", err)
	}
	path := filepath.Join(dir, walFile)
	var replayed []*Job
	if raw, err := os.ReadFile(path); err == nil && len(raw) > 0 {
		replayed, err = replayWAL(raw)
		if err != nil {
			return nil, nil, err
		}
	} else if err != nil && !os.IsNotExist(err) {
		return nil, nil, fmt.Errorf("jobs: read wal: %w", err)
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, nil, fmt.Errorf("jobs: open wal: %w", err)
	}
	w := &wal{dir: dir, path: path, f: f}
	if st, err := f.Stat(); err == nil {
		w.bytes = st.Size()
	}
	if w.bytes == 0 {
		if err := w.writeHeader(); err != nil {
			f.Close()
			return nil, nil, err
		}
	}
	return w, replayed, nil
}

// replayWAL folds raw log bytes into the surviving job set, in submission
// (Seq) order. It tolerates a torn tail: decoding stops at the first
// malformed line. A missing or alien header is an error; a torn *header*
// (file truncated inside line one) yields an empty store, matching the
// crash-before-first-record case.
func replayWAL(raw []byte) ([]*Job, error) {
	sc := bufio.NewScanner(bytes.NewReader(raw))
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	if !sc.Scan() {
		return nil, nil
	}
	var hdr walHeader
	if err := json.Unmarshal(sc.Bytes(), &hdr); err != nil {
		return nil, nil // torn header: crashed before the first full line
	}
	if hdr.Schema != WALSchema {
		return nil, fmt.Errorf("jobs: wal schema %q, want %q", hdr.Schema, WALSchema)
	}
	if hdr.Version > WALVersion {
		return nil, fmt.Errorf("jobs: wal version %d newer than supported %d", hdr.Version, WALVersion)
	}
	byID := make(map[string]*Job)
	var order []string
	for sc.Scan() {
		line := sc.Bytes()
		if len(bytes.TrimSpace(line)) == 0 {
			continue
		}
		var rec walRecord
		if err := json.Unmarshal(line, &rec); err != nil {
			break // torn tail: everything before it is intact
		}
		switch rec.Op {
		case opJob:
			if rec.Job == nil || rec.Job.ID == "" || !rec.Job.State.valid() {
				continue
			}
			j := *rec.Job
			if _, seen := byID[j.ID]; !seen {
				order = append(order, j.ID)
			}
			byID[j.ID] = &j
		case opState:
			j, ok := byID[rec.ID]
			if !ok || !rec.State.valid() {
				continue
			}
			j.State = rec.State
			j.Reason = rec.Reason
			if rec.Result != nil {
				j.Result = rec.Result
			}
			switch rec.State {
			case StateRunning:
				j.Started = rec.Time
			case StateCompleted, StateFailed, StateCanceled:
				j.Finished = rec.Time
			}
		case opEvict:
			delete(byID, rec.ID)
		}
	}
	jobs := make([]*Job, 0, len(byID))
	for _, id := range order {
		if j, ok := byID[id]; ok {
			jobs = append(jobs, j)
		}
	}
	sort.SliceStable(jobs, func(a, b int) bool { return jobs[a].Seq < jobs[b].Seq })
	return jobs, nil
}

func (w *wal) writeHeader() error {
	line, err := json.Marshal(walHeader{Schema: WALSchema, Version: WALVersion})
	if err != nil {
		return err
	}
	return w.writeLine(line)
}

func (w *wal) writeLine(line []byte) error {
	n, err := w.f.Write(append(line, '\n'))
	w.bytes += int64(n)
	if err != nil {
		return err
	}
	return w.f.Sync()
}

// append writes one fsynced record.
func (w *wal) append(rec walRecord) error {
	line, err := json.Marshal(rec)
	if err != nil {
		return err
	}
	if err := w.writeLine(line); err != nil {
		return fmt.Errorf("jobs: wal append: %w", err)
	}
	w.records++
	return nil
}

// compact atomically replaces the log with a snapshot: a fresh header
// plus one opJob record per live job, in Seq order. Written to a temp
// file, synced, then renamed over the log (the rename is the commit
// point; a crash mid-compaction leaves the old log intact).
func (w *wal) compact(jobs []*Job) error {
	sorted := append([]*Job(nil), jobs...)
	sort.Slice(sorted, func(a, b int) bool { return sorted[a].Seq < sorted[b].Seq })

	tmp, err := os.CreateTemp(w.dir, walFile+".compact-*")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name())
	bw := bufio.NewWriter(tmp)
	enc := json.NewEncoder(bw)
	if err := enc.Encode(walHeader{Schema: WALSchema, Version: WALVersion}); err != nil {
		tmp.Close()
		return err
	}
	for _, j := range sorted {
		snap := j.snapshot()
		if err := enc.Encode(walRecord{Op: opJob, Job: &snap}); err != nil {
			tmp.Close()
			return err
		}
	}
	if err := bw.Flush(); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return err
	}
	st, _ := tmp.Stat()
	if err := tmp.Close(); err != nil {
		return err
	}
	if err := os.Rename(tmp.Name(), w.path); err != nil {
		return err
	}
	// Re-point the append handle at the new file and sync the directory so
	// the rename itself is durable.
	old := w.f
	f, err := os.OpenFile(w.path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return err
	}
	old.Close()
	w.f = f
	w.records = 0
	if st != nil {
		w.bytes = st.Size()
	}
	if d, err := os.Open(w.dir); err == nil {
		d.Sync()
		d.Close()
	}
	return nil
}

func (w *wal) close() {
	if w.f != nil {
		w.f.Sync()
		w.f.Close()
		w.f = nil
	}
}
