// Package gates is an analytic gate-level cost model for the Qat datapath
// structures discussed in Section 3 of the paper: the Figure 7 Hadamard
// initializer and the Figure 8 next-instruction circuit (barrel shifter +
// recursive count-trailing-zeros). The paper reasons about these costs to
// decide which operations deserve hardware ("this operation might be
// performed with O(WAYS) gate delays, but could approach O(WAYS^2) gate
// delays if the hardware implements the OR-reductions of step 2 using a
// tree of very narrow (e.g., 2-input) OR gates"); this package makes those
// estimates computable so the claims can be tabulated and benchmarked.
//
// Counting conventions: a 2:1 multiplexer bit counts as one "gate" and one
// level; an f-input OR counts as one gate and one level; an f-ary reduction
// of n inputs therefore costs ceil((n-1)/(f-1)) gates in ceil(log_f n)
// levels. These unit-delay conventions follow standard logical-effort-free
// textbook analysis — the shape of the scaling, not absolute FPGA timing,
// is what the paper's argument (and our reproduction) relies on.
package gates

import (
	"fmt"
	"math"
)

// Cost is a gate-count and levels-of-logic (critical path) estimate.
type Cost struct {
	Gates  uint64
	Levels int
}

// add composes sequential circuit sections.
func (c Cost) add(o Cost) Cost {
	return Cost{Gates: c.Gates + o.Gates, Levels: c.Levels + o.Levels}
}

// WideOR marks an OR-reduction fanin as "whatever the technology gives in
// one level" — the optimistic end of the paper's range.
const WideOR = 0

func checkWays(ways int) {
	if ways < 1 || ways > 30 {
		panic(fmt.Sprintf("gates: ways %d out of range", ways))
	}
}

// orReduce returns the cost of OR-reducing n bits with the given fanin
// (WideOR = single level, one gate).
func orReduce(n uint64, fanin int) Cost {
	if n <= 1 {
		return Cost{}
	}
	if fanin == WideOR {
		return Cost{Gates: 1, Levels: 1}
	}
	if fanin < 2 {
		panic("gates: fanin must be >= 2 or WideOR")
	}
	gates := (n - 1 + uint64(fanin) - 2) / uint64(fanin-1) // ceil((n-1)/(f-1))
	levels := int(math.Ceil(math.Log(float64(n)) / math.Log(float64(fanin))))
	return Cost{Gates: gates, Levels: levels}
}

// BarrelShiftCost models step 1 of Figure 8: masking away channels <= s
// needs a right-shift-then-left-shift over 2^WAYS bits, i.e. 2*WAYS mux
// stages of 2^WAYS bits each. "A barrel shifter generally requires
// O(log2 N) gate delays for N bits, or O(WAYS) gate delays for AoB".
func BarrelShiftCost(ways int) Cost {
	checkWays(ways)
	n := uint64(1) << uint(ways)
	return Cost{Gates: 2 * uint64(ways) * n, Levels: 2 * ways}
}

// CTZCost models step 2 of Figure 8: WAYS levels of halve-and-test. Level
// pow2 OR-reduces 2^pow2 bits to decide result bit pow2, then muxes the
// surviving half (2^pow2 2:1 muxes, one level).
func CTZCost(ways, orFanin int) Cost {
	checkWays(ways)
	var total Cost
	for pow2 := ways - 1; pow2 >= 0; pow2-- {
		half := uint64(1) << uint(pow2)
		total = total.add(orReduce(half, orFanin))
		total = total.add(Cost{Gates: half, Levels: 1})
	}
	return total
}

// NextCost is the full Figure 8 next circuit: barrel shifter then CTZ.
func NextCost(ways, orFanin int) Cost {
	return BarrelShiftCost(ways).add(CTZCost(ways, orFanin))
}

// PopCost models the proposed pop instruction sharing the next datapath:
// the same masking shifter followed by a carry-save population count tree
// (an adder tree of depth ~WAYS over 2^WAYS bits; roughly one full adder
// per input bit).
func PopCost(ways int) Cost {
	checkWays(ways)
	n := uint64(1) << uint(ways)
	counter := Cost{Gates: n, Levels: ways + 1}
	return BarrelShiftCost(ways).add(counter)
}

// HadMuxCost models the Figure 7 had instruction as the student teams built
// it: "a lookup table expressed as a Verilog combinatorial always selecting
// the appropriate constant pattern using a case statement (multiplexor)" —
// per output bit, a WAYS:1 constant mux (WAYS-1 2:1 muxes in ceil(log2
// WAYS) levels).
func HadMuxCost(ways int) Cost {
	checkWays(ways)
	n := uint64(1) << uint(ways)
	muxesPerBit := uint64(ways - 1)
	levels := 0
	for w := 1; w < ways; w *= 2 {
		levels++
	}
	if ways == 1 {
		levels = 0
	}
	return Cost{Gates: n * muxesPerBit, Levels: levels}
}

// HadConstRegBits is the Section 3.2/Section 5 alternative: replace the
// had/zero/one instructions with pre-initialized registers. The cost is
// pure storage — WAYS+2 extra registers of 2^WAYS bits — and zero gates of
// datapath logic.
func HadConstRegBits(ways int) uint64 {
	checkWays(ways)
	return uint64(ways+2) << uint(ways)
}

// LogicOpCost is any of the channel-wise and/or/xor/not datapaths: one gate
// per channel, one level — the trivially combinational operations.
func LogicOpCost(ways int) Cost {
	checkWays(ways)
	return Cost{Gates: uint64(1) << uint(ways), Levels: 1}
}

// CSwapCost models the Fredkin/cswap datapath: per channel, two AND-OR mux
// legs (2 gates each counting the mux as one plus the difference term).
// Its real cost is architectural, not logical: it is "the only instruction
// requiring two AoB datapaths out of the Qat ALU and a second write port on
// Qat's register file" — captured by ExtraWritePorts.
func CSwapCost(ways int) Cost {
	checkWays(ways)
	return Cost{Gates: 3 * (uint64(1) << uint(ways)), Levels: 2}
}

// PortCosts tabulates the register-file port requirements of each
// instruction class, the Section 5 hardware-justification argument.
type PortCosts struct {
	ReadPorts  int
	WritePorts int
}

// PortsFor returns the Qat register file ports an instruction class needs.
func PortsFor(class string) (PortCosts, error) {
	switch class {
	case "and", "or", "xor", "cnot":
		return PortCosts{ReadPorts: 2, WritePorts: 1}, nil
	case "not", "zero", "one", "had":
		return PortCosts{ReadPorts: 1, WritePorts: 1}, nil
	case "ccnot":
		return PortCosts{ReadPorts: 3, WritePorts: 1}, nil
	case "swap":
		return PortCosts{ReadPorts: 2, WritePorts: 2}, nil
	case "cswap":
		return PortCosts{ReadPorts: 3, WritePorts: 2}, nil
	case "meas", "next", "pop":
		return PortCosts{ReadPorts: 1, WritePorts: 0}, nil
	default:
		return PortCosts{}, fmt.Errorf("gates: unknown instruction class %q", class)
	}
}
