package gates

import "testing"

func TestOrReduce(t *testing.T) {
	cases := []struct {
		n      uint64
		fanin  int
		gates  uint64
		levels int
	}{
		{1, 2, 0, 0},
		{2, 2, 1, 1},
		{4, 2, 3, 2},
		{8, 2, 7, 3},
		{1024, 2, 1023, 10},
		{8, 4, 3, 2},  // two levels of 4-input ORs: ceil(7/3)=3 gates
		{64, 8, 9, 2}, // ceil(63/7)=9 gates, log8(64)=2
		{1024, WideOR, 1, 1},
	}
	for _, c := range cases {
		got := orReduce(c.n, c.fanin)
		if got.Gates != c.gates || got.Levels != c.levels {
			t.Errorf("orReduce(%d,%d) = %+v, want {%d %d}", c.n, c.fanin, got, c.gates, c.levels)
		}
	}
}

// TestFig8GateDelayScaling verifies the paper's central Section 3.3 claim:
// next is O(WAYS) levels with wide ORs but approaches O(WAYS^2) with
// 2-input OR trees.
func TestFig8GateDelayScaling(t *testing.T) {
	for _, ways := range []int{4, 8, 16} {
		wide := NextCost(ways, WideOR)
		narrow := NextCost(ways, 2)
		// Wide: 2*ways (shifter) + 2 per CTZ level = 4*ways - small const.
		if wide.Levels > 4*ways {
			t.Errorf("ways=%d: wide levels %d exceed 4*ways", ways, wide.Levels)
		}
		// Narrow: shifter 2*ways + sum(pow2) + ways muxes
		//       = 2*ways + ways*(ways-1)/2 + ways.
		wantNarrow := 2*ways + ways*(ways-1)/2 + ways
		if narrow.Levels != wantNarrow {
			t.Errorf("ways=%d: narrow levels %d, want %d", ways, narrow.Levels, wantNarrow)
		}
	}
	// Quadratic vs linear separation must widen with ways.
	gap8 := NextCost(8, 2).Levels - NextCost(8, WideOR).Levels
	gap16 := NextCost(16, 2).Levels - NextCost(16, WideOR).Levels
	if gap16 <= gap8 {
		t.Error("narrow-OR penalty must grow with ways")
	}
}

// TestStudent8WaySingleStage: the paper notes "the student versions limited
// WAYS to 8, which is easily viable within a single pipeline stage" — at 8
// ways even the narrow-OR next is far shallower than at 16.
func TestStudent8WaySingleStage(t *testing.T) {
	s8 := NextCost(8, 2).Levels
	s16 := NextCost(16, 2).Levels
	if s8 >= s16/2 {
		t.Errorf("8-way next (%d levels) should be much shallower than 16-way (%d)", s8, s16)
	}
}

func TestBarrelShiftLinearLevels(t *testing.T) {
	for ways := 1; ways <= 16; ways++ {
		c := BarrelShiftCost(ways)
		if c.Levels != 2*ways {
			t.Errorf("ways=%d: levels %d", ways, c.Levels)
		}
		if c.Gates != uint64(2*ways)<<uint(ways) {
			t.Errorf("ways=%d: gates %d", ways, c.Gates)
		}
	}
}

// TestFig7HadMuxVsConstRegs: the Section 5 conclusion — constant registers
// beat had-generation hardware. The mux network for 16 ways costs ~1M gate
// bits; the constant bank costs 18 registers of storage and zero gates.
func TestFig7HadMuxVsConstRegs(t *testing.T) {
	mux := HadMuxCost(16)
	if mux.Gates != uint64(15)<<16 {
		t.Errorf("had mux gates = %d", mux.Gates)
	}
	if mux.Levels != 4 {
		t.Errorf("had mux levels = %d, want 4", mux.Levels)
	}
	bits := HadConstRegBits(16)
	if bits != 18<<16 {
		t.Errorf("const reg bits = %d", bits)
	}
	// The paper's point: gate cost goes to zero, storage cost is close to
	// the mux gate count — a clear win since registers already exist.
	if mux.Gates < bits/2 {
		t.Error("expected mux gates to be comparable to constant storage")
	}
}

func TestLogicOpIsSingleLevel(t *testing.T) {
	for _, ways := range []int{1, 8, 16} {
		c := LogicOpCost(ways)
		if c.Levels != 1 || c.Gates != uint64(1)<<uint(ways) {
			t.Errorf("ways=%d: %+v", ways, c)
		}
	}
}

func TestPopSharesShifter(t *testing.T) {
	p := PopCost(16)
	n := NextCost(16, 2)
	if p.Gates == 0 || p.Levels == 0 {
		t.Fatal("empty pop cost")
	}
	// pop's adder tree is deeper than one OR level but the shifter
	// dominates gates in both.
	if p.Gates < BarrelShiftCost(16).Gates {
		t.Error("pop must include the shifter")
	}
	_ = n
}

// TestS5PortRequirements encodes the Section 5 simplification table: which
// instructions force the 3rd read port and the 2nd write port.
func TestS5PortRequirements(t *testing.T) {
	cases := map[string]PortCosts{
		"and":   {2, 1},
		"cnot":  {2, 1},
		"ccnot": {3, 1},
		"swap":  {2, 2},
		"cswap": {3, 2},
		"meas":  {1, 0},
		"next":  {1, 0},
		"had":   {1, 1},
	}
	for class, want := range cases {
		got, err := PortsFor(class)
		if err != nil {
			t.Fatalf("%s: %v", class, err)
		}
		if got != want {
			t.Errorf("%s: %+v, want %+v", class, got, want)
		}
	}
	// Only swap/cswap need the second write port; only ccnot/cswap need
	// the third read port — the paper's argument for demoting them to
	// assembler macros.
	if _, err := PortsFor("bogus"); err == nil {
		t.Error("unknown class accepted")
	}
}

func TestBadWaysPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("no panic")
		}
	}()
	NextCost(0, 2)
}

func BenchmarkFig8GateModel(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for ways := 1; ways <= 16; ways++ {
			_ = NextCost(ways, 2)
			_ = NextCost(ways, WideOR)
		}
	}
}
