// Package energy models the switching-energy and adiabatic-logic arguments
// the paper makes about Qat's datapath. The paper repeatedly connects
// reversible gates to power: "adiabatic logic reduces power consumption by
// balancing every logic 1 with a logic 0", the swap gates' "billiard-ball
// conservancy ... could simplify reducing Qat's power consumption by using
// a (conventional) adiabatic logic implementation", and the conclusions ask
// "how much power savings it will provide".
//
// Two standard first-order proxies are tracked per executed Qat
// instruction:
//
//   - SwitchedBits: register bits that actually toggled — the conventional
//     CMOS dynamic-power proxy (each toggle charges/discharges a node).
//   - ErasedBits: toggled bits written by logically irreversible operations
//     (and/or/xor/zero/one/had overwrite their destination so its prior
//     value is unrecoverable) — the Landauer-bound proxy. Reversible
//     operations (not, cnot, ccnot, swap, cswap) are self-inverse, so an
//     adiabatic implementation can in principle recover their switching
//     energy; their toggles never count as erased.
//
// The meter plugs into the Qat coprocessor (qat.Coprocessor.Meter) and the
// S5 energy experiment compares the irreversible and reversible-only
// compilations of the same program under both proxies.
package energy

import (
	"math/bits"

	"tangled/internal/aob"
	"tangled/internal/isa"
)

// Class partitions Qat operations by thermodynamic character.
type Class uint8

const (
	// Reversible ops are self-inverse bijections on the register file.
	Reversible Class = iota
	// Irreversible ops destroy their destination's prior value.
	Irreversible
	// ReadOnly ops (meas/next/pop) write no Qat register.
	ReadOnly
)

// Classify returns the thermodynamic class of a Qat operation. Non-Qat
// operations classify as ReadOnly (they never touch AoB state).
func Classify(op isa.Op) Class {
	switch op {
	case isa.OpQNot, isa.OpQCnot, isa.OpQCcnot, isa.OpQSwap, isa.OpQCswap:
		return Reversible
	case isa.OpQAnd, isa.OpQOr, isa.OpQXor, isa.OpQZero, isa.OpQOne, isa.OpQHad:
		return Irreversible
	default:
		return ReadOnly
	}
}

// String names the class for diagnostics and reports.
func (c Class) String() string {
	switch c {
	case Reversible:
		return "reversible"
	case Irreversible:
		return "irreversible"
	default:
		return "read-only"
	}
}

// StaticCost bounds the energy proxies of one executed operation without
// running it: the worst case is every bit of every written register
// toggling, so an op writing w registers on a 2^ways-channel machine
// switches at most w<<ways bits, all of them erased when the operation is
// irreversible. This is the static analogue of Meter.Record — package lint
// uses it to estimate per-basic-block energy before a program is admitted.
func StaticCost(op isa.Op, ways int) (switched, erased uint64) {
	if ways < 0 {
		ways = 0
	}
	if ways > aob.MaxWays {
		ways = aob.MaxWays
	}
	var writes uint64
	switch op {
	case isa.OpQSwap, isa.OpQCswap:
		writes = 2
	case isa.OpQZero, isa.OpQOne, isa.OpQHad, isa.OpQNot,
		isa.OpQAnd, isa.OpQOr, isa.OpQXor, isa.OpQCnot, isa.OpQCcnot:
		writes = 1
	default:
		return 0, 0
	}
	switched = writes << uint(ways)
	if Classify(op) == Irreversible {
		erased = switched
	}
	return switched, erased
}

// Toggles counts the bit positions where two equal-width vectors differ —
// the switching events of overwriting one with the other.
func Toggles(before, after *aob.Vector) uint64 {
	if before.Ways() != after.Ways() {
		panic("energy: mismatched vector widths")
	}
	var n uint64
	for i := 0; i < before.NumWords(); i++ {
		n += uint64(bits.OnesCount64(before.Word(i) ^ after.Word(i)))
	}
	return n
}

// Meter accumulates energy-proxy statistics for one execution.
type Meter struct {
	SwitchedBits    uint64
	ErasedBits      uint64
	ReversibleOps   uint64
	IrreversibleOps uint64
	ReadOps         uint64
	// PerOp breaks SwitchedBits down by opcode.
	PerOp map[isa.Op]uint64
}

// NewMeter returns an empty meter.
func NewMeter() *Meter {
	return &Meter{PerOp: make(map[isa.Op]uint64)}
}

// Record accounts one executed operation given before/after snapshots of
// every register the operation wrote (one pair for most ops, two for
// swap/cswap).
func (m *Meter) Record(op isa.Op, pairs ...[2]*aob.Vector) {
	var t uint64
	for _, p := range pairs {
		t += Toggles(p[0], p[1])
	}
	m.SwitchedBits += t
	m.PerOp[op] += t
	switch Classify(op) {
	case Reversible:
		m.ReversibleOps++
	case Irreversible:
		m.IrreversibleOps++
		m.ErasedBits += t
	default:
		m.ReadOps++
	}
}

// AdiabaticRecoverable returns the switching energy an ideal adiabatic
// implementation could recover: the toggles of reversible operations.
func (m *Meter) AdiabaticRecoverable() uint64 {
	return m.SwitchedBits - m.ErasedBits
}

// Reset clears the meter.
func (m *Meter) Reset() {
	*m = Meter{PerOp: make(map[isa.Op]uint64)}
}
