package energy_test

import (
	"testing"

	"tangled/internal/aob"
	"tangled/internal/asm"
	"tangled/internal/compile"
	"tangled/internal/cpu"
	"tangled/internal/energy"
	"tangled/internal/isa"
	"tangled/internal/qat"
)

func TestClassify(t *testing.T) {
	rev := []isa.Op{isa.OpQNot, isa.OpQCnot, isa.OpQCcnot, isa.OpQSwap, isa.OpQCswap}
	irr := []isa.Op{isa.OpQAnd, isa.OpQOr, isa.OpQXor, isa.OpQZero, isa.OpQOne, isa.OpQHad}
	ro := []isa.Op{isa.OpQMeas, isa.OpQNext, isa.OpQPop, isa.OpAdd}
	for _, op := range rev {
		if energy.Classify(op) != energy.Reversible {
			t.Errorf("%s should be reversible", op.Name())
		}
	}
	for _, op := range irr {
		if energy.Classify(op) != energy.Irreversible {
			t.Errorf("%s should be irreversible", op.Name())
		}
	}
	for _, op := range ro {
		if energy.Classify(op) != energy.ReadOnly {
			t.Errorf("%s should be read-only", op.Name())
		}
	}
}

func TestToggles(t *testing.T) {
	a, _ := aob.FromString(3, "00001111")
	b, _ := aob.FromString(3, "01010101")
	if got := energy.Toggles(a, b); got != 4 {
		t.Errorf("toggles = %d, want 4", got)
	}
	if energy.Toggles(a, a) != 0 {
		t.Error("self toggles must be 0")
	}
}

func TestTogglesMismatchedPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("no panic")
		}
	}()
	energy.Toggles(aob.New(3), aob.New(4))
}

func TestMeterAccounting(t *testing.T) {
	m := energy.NewMeter()
	zero := aob.New(4)
	ones := aob.OneVector(4)
	m.Record(isa.OpQOne, [2]*aob.Vector{zero, ones}) // irreversible, 16 toggles
	m.Record(isa.OpQNot, [2]*aob.Vector{ones, zero}) // reversible, 16 toggles
	m.Record(isa.OpQMeas)                            // read-only
	if m.SwitchedBits != 32 {
		t.Errorf("switched = %d", m.SwitchedBits)
	}
	if m.ErasedBits != 16 {
		t.Errorf("erased = %d", m.ErasedBits)
	}
	if m.AdiabaticRecoverable() != 16 {
		t.Errorf("recoverable = %d", m.AdiabaticRecoverable())
	}
	if m.ReversibleOps != 1 || m.IrreversibleOps != 1 || m.ReadOps != 1 {
		t.Errorf("op classes: %+v", m)
	}
	if m.PerOp[isa.OpQOne] != 16 {
		t.Errorf("per-op: %v", m.PerOp)
	}
	m.Reset()
	if m.SwitchedBits != 0 || len(m.PerOp) != 0 {
		t.Error("reset incomplete")
	}
}

// runMetered executes an assembly program with the energy meter attached.
func runMetered(t *testing.T, src string, ways int) (*cpu.Machine, *energy.Meter) {
	t.Helper()
	prog, err := asm.Assemble(src)
	if err != nil {
		t.Fatal(err)
	}
	m := cpu.New(ways)
	meter := energy.NewMeter()
	m.Qat.Meter = meter
	if err := m.Load(prog); err != nil {
		t.Fatal(err)
	}
	if err := m.Run(10_000_000); err != nil {
		t.Fatal(err)
	}
	return m, meter
}

func TestMeterOnMachine(t *testing.T) {
	_, meter := runMetered(t, `
	one @1            ; 256 toggles, erased
	not @1            ; 256 toggles, recoverable
	had @2,0          ; 128 toggles, erased
	lex $1,3
	meas $1,@2        ; read-only
	lex $0,0
	sys
	`, 8)
	if meter.SwitchedBits != 256+256+128 {
		t.Errorf("switched = %d", meter.SwitchedBits)
	}
	if meter.ErasedBits != 256+128 {
		t.Errorf("erased = %d", meter.ErasedBits)
	}
	if meter.ReadOps != 1 {
		t.Errorf("read ops = %d", meter.ReadOps)
	}
}

func TestSwapIsConservative(t *testing.T) {
	// Swap toggles bits but erases nothing — the billiard-ball argument.
	_, meter := runMetered(t, `
	had @1,0
	had @2,1
	swap @1,@2
	cswap @1,@2,@1
	lex $0,0
	sys
	`, 8)
	if meter.AdiabaticRecoverable() == 0 {
		t.Error("swap toggles should be recoverable")
	}
	// Only the two had initializers erase.
	if meter.ErasedBits != 128+128 {
		t.Errorf("erased = %d", meter.ErasedBits)
	}
}

// TestS5EnergyAblation is the paper's open power question quantified: the
// reversible-only compilation of the factoring program switches more bits
// in total (more instructions) but nearly all of its switching is
// adiabatically recoverable, while the irreversible compilation erases a
// large fraction outright.
func TestS5EnergyAblation(t *testing.T) {
	run := func(opts compile.Options) *energy.Meter {
		res, err := compile.FactorProgram(15, 8, 4, 4, opts)
		if err != nil {
			t.Fatal(err)
		}
		prog, err := asm.Assemble(res.Asm)
		if err != nil {
			t.Fatal(err)
		}
		m := cpu.New(8)
		meter := energy.NewMeter()
		m.Qat.Meter = meter
		if err := m.Load(prog); err != nil {
			t.Fatal(err)
		}
		if err := m.Run(10_000_000); err != nil {
			t.Fatal(err)
		}
		if m.Regs[4] != 5 || m.Regs[1] != 3 {
			t.Fatal("wrong factors")
		}
		return meter
	}
	irr := run(compile.Options{})
	rev := run(compile.Options{Reversible: true})

	irrErasedFrac := float64(irr.ErasedBits) / float64(irr.SwitchedBits)
	revErasedFrac := float64(rev.ErasedBits) / float64(rev.SwitchedBits)
	t.Logf("irreversible: %d switched, %d erased (%.0f%%)",
		irr.SwitchedBits, irr.ErasedBits, 100*irrErasedFrac)
	t.Logf("reversible:   %d switched, %d erased (%.0f%%)",
		rev.SwitchedBits, rev.ErasedBits, 100*revErasedFrac)
	if revErasedFrac >= irrErasedFrac {
		t.Errorf("reversible compilation erases a larger fraction (%.2f >= %.2f)",
			revErasedFrac, irrErasedFrac)
	}
	if rev.ErasedBits >= irr.ErasedBits {
		t.Errorf("reversible erases more bits outright (%d >= %d)",
			rev.ErasedBits, irr.ErasedBits)
	}
}

// TestStaticCostBoundsMeter checks that the static per-op bound dominates
// every dynamic measurement: run an op on a real coprocessor and compare the
// meter's recorded toggles against StaticCost.
func TestStaticCostBoundsMeter(t *testing.T) {
	const ways = 6
	ops := []isa.Inst{
		{Op: isa.OpQZero, QA: 1},
		{Op: isa.OpQOne, QA: 1},
		{Op: isa.OpQNot, QA: 1},
		{Op: isa.OpQHad, QA: 1, K: 3},
		{Op: isa.OpQAnd, QA: 1, QB: 2, QC: 3},
		{Op: isa.OpQXor, QA: 1, QB: 2, QC: 3},
		{Op: isa.OpQCnot, QA: 1, QB: 2},
		{Op: isa.OpQSwap, QA: 1, QB: 2},
		{Op: isa.OpQCswap, QA: 1, QB: 2, QC: 3},
		{Op: isa.OpQMeas, RD: 1, QA: 1},
	}
	for _, inst := range ops {
		q := qat.New(ways)
		q.Meter = energy.NewMeter()
		for a := uint8(1); a <= 3; a++ {
			if _, _, err := q.Exec(isa.Inst{Op: isa.OpQHad, QA: a, K: a % ways}, 0); err != nil {
				t.Fatal(err)
			}
		}
		q.Meter.Reset()
		if _, _, err := q.Exec(inst, 0); err != nil {
			t.Fatalf("%s: %v", inst, err)
		}
		sw, er := energy.StaticCost(inst.Op, ways)
		if q.Meter.SwitchedBits > sw {
			t.Errorf("%s: measured %d switched > static bound %d", inst, q.Meter.SwitchedBits, sw)
		}
		if q.Meter.ErasedBits > er {
			t.Errorf("%s: measured %d erased > static bound %d", inst, q.Meter.ErasedBits, er)
		}
	}
	if sw, er := energy.StaticCost(isa.OpAdd, ways); sw != 0 || er != 0 {
		t.Errorf("non-Qat op has static cost %d/%d", sw, er)
	}
}
