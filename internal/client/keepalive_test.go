package client

// Regression tests for the connection-reuse and GET-retry fixes: response
// bodies must be drained before Close (else every retry pays a fresh dial)
// and get must ride the same backoff machinery as post (else one transport
// flake fails a healthz poll, which a heartbeat loop escalates into a
// missed beat).

import (
	"context"
	"encoding/json"
	"errors"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"

	"tangled/internal/server"
)

// countingListener counts accepted connections: one dial = one Accept.
type countingListener struct {
	net.Listener
	accepts *atomic.Int64
}

func (l countingListener) Accept() (net.Conn, error) {
	c, err := l.Listener.Accept()
	if err == nil {
		l.accepts.Add(1)
	}
	return c, err
}

// TestKeepAliveAcrossRetries proves a whole retry sequence — a fat error
// response (decodeError reads a 64KiB prefix and abandons the rest), its
// retry, and trailing GET polls — rides one TCP connection. Before the
// drain-before-Close fix, the abandoned remainder tore the connection
// down and every attempt dialed fresh. (A remainder of a few buffered
// bytes is forgiven by the transport's read-ahead; past that the
// connection dies, which is why the error body here is > 64KiB.)
func TestKeepAliveAcrossRetries(t *testing.T) {
	var accepts atomic.Int64
	var runs atomic.Int64
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/run", func(w http.ResponseWriter, r *http.Request) {
		var req server.RunRequest
		json.NewDecoder(r.Body).Decode(&req)
		if runs.Add(1) == 1 {
			w.WriteHeader(http.StatusInternalServerError)
			json.NewEncoder(w).Encode(server.ErrorResponse{Error: strings.Repeat("boom ", 24<<10)})
			return
		}
		json.NewEncoder(w).Encode(server.RunResult{ID: req.ID, Insts: 42})
	})
	mux.HandleFunc("/v1/healthz", func(w http.ResponseWriter, r *http.Request) {
		json.NewEncoder(w).Encode(server.Health{Status: "ok"})
	})
	ts := httptest.NewUnstartedServer(mux)
	ts.Listener = countingListener{ts.Listener, &accepts}
	ts.Start()
	t.Cleanup(ts.Close)

	// Dedicated transport: the shared default pool must not donate or
	// steal connections while we count.
	c := NewWith(Config{BaseURL: ts.URL, HTTPClient: &http.Client{Transport: &http.Transport{}}})
	stubSleep(c)
	ctx := context.Background()

	if _, err := c.Health(ctx); err != nil {
		t.Fatal(err)
	}
	got, err := c.Run(ctx, server.RunRequest{Src: "lex $1,1\n"})
	if err != nil {
		t.Fatal(err)
	}
	if got.Insts != 42 {
		t.Fatalf("result %+v", got)
	}
	if _, err := c.Health(ctx); err != nil {
		t.Fatal(err)
	}
	if n := runs.Load(); n != 2 {
		t.Fatalf("run attempts = %d, want 2 (one 500, one retry)", n)
	}
	if n := accepts.Load(); n != 1 {
		t.Fatalf("server accepted %d connections across the sequence, want 1 (keep-alive reuse)", n)
	}
}

// TestGetRetriesTransportFlake injects a mid-flight connection abort into
// the first healthz poll and asserts get retries through it.
func TestGetRetriesTransportFlake(t *testing.T) {
	var attempts atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if attempts.Add(1) == 1 {
			hj, ok := w.(http.Hijacker)
			if !ok {
				t.Fatal("response writer is not a Hijacker")
			}
			conn, _, err := hj.Hijack()
			if err != nil {
				t.Fatalf("hijack: %v", err)
			}
			conn.Close() // slam the door before any bytes of response
			return
		}
		json.NewEncoder(w).Encode(server.Health{Status: "ok", Workers: 3})
	}))
	t.Cleanup(ts.Close)

	c := New(ts.URL)
	stubSleep(c)
	h, err := c.Health(context.Background())
	if err != nil {
		t.Fatalf("health after one transport flake: %v", err)
	}
	if h.Workers != 3 {
		t.Fatalf("health %+v", h)
	}
	if n := attempts.Load(); n != 2 {
		t.Fatalf("attempts = %d, want 2", n)
	}
}

// TestGetDoesNotRetry503 pins the draining semantics: 503 on the GET
// surface is a real answer (a draining server's healthz), so get must
// surface it immediately instead of burning retries against it.
func TestGetDoesNotRetry503(t *testing.T) {
	var attempts atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		attempts.Add(1)
		w.WriteHeader(http.StatusServiceUnavailable)
		json.NewEncoder(w).Encode(server.Health{Status: "draining", Draining: true})
	}))
	t.Cleanup(ts.Close)

	c := New(ts.URL)
	stubSleep(c)
	_, err := c.Health(context.Background())
	var apiErr *APIError
	if !errors.As(err, &apiErr) || apiErr.Status != http.StatusServiceUnavailable {
		t.Fatalf("err = %v, want immediate 503 APIError", err)
	}
	if n := attempts.Load(); n != 1 {
		t.Fatalf("attempts = %d, want 1 (503 is an answer, not a flake)", n)
	}
}
