package client

// White-box tests of the retry discipline against scripted fake servers
// (httptest on 127.0.0.1:0, like every server-shaped test here). The sleep
// hook is stubbed so backoff schedules are asserted, not waited out.

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"tangled/internal/server"
)

// scripted returns a test server that answers each attempt with the next
// status in script (the last repeats), recording request IDs.
func scripted(t *testing.T, script []int, result server.RunResult) (*httptest.Server, *[]string, *atomic.Int64) {
	t.Helper()
	var attempts atomic.Int64
	ids := &[]string{}
	var mu sync.Mutex
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		n := int(attempts.Add(1)) - 1
		var req server.RunRequest
		json.NewDecoder(r.Body).Decode(&req)
		mu.Lock()
		*ids = append(*ids, req.ID)
		mu.Unlock()
		code := script[len(script)-1]
		if n < len(script) {
			code = script[n]
		}
		if code == http.StatusOK {
			json.NewEncoder(w).Encode(result)
			return
		}
		if code == http.StatusTooManyRequests {
			w.Header().Set("Retry-After", "1")
		}
		w.WriteHeader(code)
		json.NewEncoder(w).Encode(server.ErrorResponse{Error: fmt.Sprintf("scripted %d", code), RetryAfterMs: 250})
	}))
	t.Cleanup(ts.Close)
	return ts, ids, &attempts
}

// stubSleep replaces the client's sleep with a recorder.
func stubSleep(c *Client) *[]time.Duration {
	var mu sync.Mutex
	slept := &[]time.Duration{}
	c.sleep = func(ctx context.Context, d time.Duration) error {
		mu.Lock()
		*slept = append(*slept, d)
		mu.Unlock()
		return ctx.Err()
	}
	return slept
}

func TestRetryAfterTransientFailures(t *testing.T) {
	want := server.RunResult{ID: "x", Insts: 7}
	ts, ids, attempts := scripted(t, []int{500, 503, 200}, want)
	c := New(ts.URL)
	stubSleep(c)

	got, err := c.Run(context.Background(), server.RunRequest{Src: "lex $1,1\n"})
	if err != nil {
		t.Fatal(err)
	}
	if got.Insts != want.Insts {
		t.Fatalf("result %+v", got)
	}
	if n := attempts.Load(); n != 3 {
		t.Fatalf("%d attempts, want 3", n)
	}
	// Idempotent resubmission: the ID is minted once, before the first
	// attempt, and every retry carries it.
	if (*ids)[0] == "" || (*ids)[0] != (*ids)[1] || (*ids)[1] != (*ids)[2] {
		t.Fatalf("request IDs varied across retries: %q", *ids)
	}
}

func TestNoRetryOnClientError(t *testing.T) {
	ts, _, attempts := scripted(t, []int{400}, server.RunResult{})
	c := New(ts.URL)
	stubSleep(c)

	_, err := c.Run(context.Background(), server.RunRequest{Src: "bogus"})
	var apiErr *APIError
	if !errors.As(err, &apiErr) || apiErr.Status != 400 {
		t.Fatalf("err = %v, want APIError 400", err)
	}
	if n := attempts.Load(); n != 1 {
		t.Fatalf("%d attempts for a 400, want 1 (no retry)", n)
	}
}

func TestGiveUpAfterMaxRetries(t *testing.T) {
	ts, _, attempts := scripted(t, []int{503}, server.RunResult{})
	c := NewWith(Config{BaseURL: ts.URL, MaxRetries: 2})
	stubSleep(c)

	_, err := c.Run(context.Background(), server.RunRequest{Src: "lex $1,1\n"})
	if err == nil {
		t.Fatal("expected failure")
	}
	var apiErr *APIError
	if !errors.As(err, &apiErr) || apiErr.Status != 503 {
		t.Fatalf("err = %v, want wrapped APIError 503", err)
	}
	if n := attempts.Load(); n != 3 {
		t.Fatalf("%d attempts, want 1 + 2 retries", n)
	}
}

func TestBackoffHonorsRetryAfterAndCap(t *testing.T) {
	ts, _, _ := scripted(t, []int{429, 429, 200}, server.RunResult{})
	c := NewWith(Config{BaseURL: ts.URL, BaseBackoff: time.Millisecond, MaxBackoff: 4 * time.Millisecond})
	slept := stubSleep(c)

	if _, err := c.Run(context.Background(), server.RunRequest{Src: "lex $1,1\n"}); err != nil {
		t.Fatal(err)
	}
	if len(*slept) != 2 {
		t.Fatalf("slept %d times, want 2", len(*slept))
	}
	for i, d := range *slept {
		// The server advertised retry_after_ms=250; the jittered
		// exponential is capped at 4ms, so the hint must win.
		if d < 250*time.Millisecond {
			t.Fatalf("sleep %d was %v, Retry-After hint of 250ms ignored", i, d)
		}
	}
}

func TestBackoffJitterWithinBounds(t *testing.T) {
	c := NewWith(Config{BaseURL: "http://unused", BaseBackoff: 10 * time.Millisecond, MaxBackoff: 80 * time.Millisecond})
	for attempt := 0; attempt < 6; attempt++ {
		for trial := 0; trial < 50; trial++ {
			d := c.backoff(attempt, 0)
			if d <= 0 || d > 80*time.Millisecond {
				t.Fatalf("attempt %d: backoff %v outside (0, cap]", attempt, d)
			}
		}
	}
}

func TestBatchSchemaChecked(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprintln(w, `{"schema":"something-else","version":9,"count":0}`)
	}))
	defer ts.Close()
	c := New(ts.URL)
	if _, err := c.Batch(context.Background(), server.BatchRequest{Programs: []server.RunRequest{{Src: "lex $1,1\n"}}}); err == nil {
		t.Fatal("schema mismatch not detected")
	}
}

func TestBatchTruncationDetected(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprintf(w, "{\"schema\":%q,\"version\":%d,\"count\":2}\n{\"index\":0}\n",
			server.ResultsSchema, server.ResultsSchemaVersion)
	}))
	defer ts.Close()
	c := New(ts.URL)
	if _, err := c.Batch(context.Background(), server.BatchRequest{Programs: []server.RunRequest{{Src: "x"}}}); err == nil {
		t.Fatal("truncated stream not detected")
	}
}

// TestAgainstRealServer closes the loop: the retrying client against the
// real serving stack, including an end-to-end idempotent replay.
func TestAgainstRealServer(t *testing.T) {
	s, err := server.New(server.Config{})
	if err != nil {
		t.Fatal(err)
	}
	base, err := s.StartLocal()
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	c := New(base)
	ctx := context.Background()

	res, err := c.Run(ctx, server.RunRequest{ID: "real-1", Src: "lex $1,9\nlex $0,0\nsys\n"})
	if err != nil || res.Regs[1] != 9 {
		t.Fatalf("run: %+v, %v", res, err)
	}
	again, err := c.Run(ctx, server.RunRequest{ID: "real-1", Src: "lex $1,9\nlex $0,0\nsys\n"})
	if err != nil || again != res {
		t.Fatalf("replay: %+v, %v", again, err)
	}

	results, err := c.Batch(ctx, server.BatchRequest{Programs: []server.RunRequest{
		{Src: "lex $2,3\nlex $0,0\nsys\n"}, {Src: "lex $3,4\nlex $0,0\nsys\n"},
	}})
	if err != nil || len(results) != 2 || results[0].Regs[2] != 3 || results[1].Regs[3] != 4 {
		t.Fatalf("batch: %+v, %v", results, err)
	}

	if _, err := c.Assemble(ctx, "nonsense $9\n"); err == nil {
		t.Fatal("assemble of nonsense succeeded")
	}
	// AssembleWith carries the optimizer opt-in: the dead first store must
	// be rewritten away and the shrunken image ride the response.
	ar, err := c.AssembleWith(ctx, server.AssembleRequest{
		Src: "lex $1,5\nlex $1,7\nlex $0,0\nsys\n", Optimize: true,
	})
	if err != nil || ar.Opt == nil || !ar.Opt.Applied {
		t.Fatalf("assemble with optimize: %+v, %v", ar.Opt, err)
	}
	if len(ar.OptimizedWords) == 0 || len(ar.OptimizedWords) >= len(ar.Words) {
		t.Fatalf("optimized image did not shrink: %d vs %d words", len(ar.OptimizedWords), len(ar.Words))
	}
	h, err := c.Health(ctx)
	if err != nil || h.Status != "ok" {
		t.Fatalf("health: %+v, %v", h, err)
	}
	bi, err := c.BuildInfo(ctx)
	if err != nil || bi.ResultsSchema != server.ResultsSchema {
		t.Fatalf("buildinfo: %+v, %v", bi, err)
	}
}
