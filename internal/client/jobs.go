package client

// Async job API: typed wrappers over POST/GET/DELETE /v1/jobs and the
// GET /v1/events lifecycle stream, plus WaitJob — the backoff poller that
// turns the async surface back into a blocking call when the caller wants
// one. Submission reuses the idempotent-ID discipline of Run: the job ID
// is minted client-side before the first attempt, so a retried submit
// lands on the server's dedupe-by-ID path instead of enqueueing twice.

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/url"
	"strconv"
	"time"

	"tangled/internal/jobs"
	"tangled/internal/server"
)

// SubmitJob submits one program to the async queue and returns its
// accepted record (state "queued"). A request without an ID is assigned
// one before the first attempt.
func (c *Client) SubmitJob(ctx context.Context, req server.JobRequest) (server.JobStatus, error) {
	if req.ID == "" {
		req.ID = NewRequestID()
	}
	var out server.JobStatus
	err := c.post(ctx, "/v1/jobs", &req, &out)
	return out, err
}

// Job fetches one job's lifecycle status (result attached once terminal).
func (c *Client) Job(ctx context.Context, id string) (server.JobStatus, error) {
	var out server.JobStatus
	err := c.get(ctx, "/v1/jobs/"+url.PathEscape(id), &out)
	return out, err
}

// CancelJob requests cancellation and returns the post-call record: a
// queued job comes back "canceled", a running one still "running" until
// its context cancellation lands.
func (c *Client) CancelJob(ctx context.Context, id string) (server.JobStatus, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodDelete,
		c.cfg.BaseURL+"/v1/jobs/"+url.PathEscape(id), nil)
	if err != nil {
		return server.JobStatus{}, err
	}
	resp, err := c.http.Do(req)
	if err != nil {
		return server.JobStatus{}, err
	}
	defer drainClose(resp.Body)
	if resp.StatusCode >= 300 {
		return server.JobStatus{}, decodeError(resp)
	}
	var out server.JobStatus
	err = json.NewDecoder(resp.Body).Decode(&out)
	return out, err
}

// waitPoll* shape the WaitJob status-poll schedule: quick first checks for
// short jobs, backing off toward a cap for long ones.
const (
	waitPollBase   = 25 * time.Millisecond
	waitPollFactor = 1.6
	waitPollMax    = time.Second
)

// WaitJob polls until the job reaches a terminal state (completed, failed
// or canceled — inspect State/Reason/Result on the returned record) or
// ctx ends. The poll interval backs off exponentially to waitPollMax.
func (c *Client) WaitJob(ctx context.Context, id string) (server.JobStatus, error) {
	delay := waitPollBase
	for {
		st, err := c.Job(ctx, id)
		if err != nil {
			return st, err
		}
		if jobs.State(st.State).Terminal() {
			return st, nil
		}
		if err := c.sleep(ctx, delay); err != nil {
			return st, err
		}
		delay = time.Duration(float64(delay) * waitPollFactor)
		if delay > waitPollMax {
			delay = waitPollMax
		}
	}
}

// Events streams lifecycle events from GET /v1/events, calling fn for
// each one after validating the stream's versioned header. since replays
// buffered events past that sequence number first; follow=false returns
// after the replay instead of streaming live. The stream ends cleanly
// (nil) when the server closes it (drain) or fn returns false; ctx ends
// it with ctx.Err().
func (c *Client) Events(ctx context.Context, since uint64, follow bool, fn func(jobs.Event) bool) error {
	q := url.Values{}
	if since > 0 {
		q.Set("since", strconv.FormatUint(since, 10))
	}
	q.Set("follow", strconv.FormatBool(follow))
	req, err := http.NewRequestWithContext(ctx, http.MethodGet,
		c.cfg.BaseURL+"/v1/events?"+q.Encode(), nil)
	if err != nil {
		return err
	}
	resp, err := c.http.Do(req)
	if err != nil {
		return err
	}
	// No drainClose here: with follow=true this body is a live unbounded
	// stream, and draining it would block until the server sends more.
	// Abandoning the connection is the only way to hang up on a follow.
	defer resp.Body.Close()
	if resp.StatusCode >= 300 {
		return decodeError(resp)
	}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 64*1024), 8<<20)
	if !sc.Scan() {
		return errors.New("client: empty events response")
	}
	var hdr server.EventsHeader
	if err := json.Unmarshal(sc.Bytes(), &hdr); err != nil {
		return fmt.Errorf("client: bad events header: %w", err)
	}
	if hdr.Schema != jobs.EventsSchema || hdr.Version != jobs.EventsSchemaVersion {
		return fmt.Errorf("client: events schema %q v%d, want %q v%d",
			hdr.Schema, hdr.Version, jobs.EventsSchema, jobs.EventsSchemaVersion)
	}
	for sc.Scan() {
		var ev jobs.Event
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			return fmt.Errorf("client: bad event line: %w", err)
		}
		if !fn(ev) {
			return nil
		}
	}
	if err := sc.Err(); err != nil {
		if ctx.Err() != nil {
			return ctx.Err()
		}
		return err
	}
	return nil
}
