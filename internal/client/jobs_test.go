package client

// Tests of the async job client against a real in-process server (the same
// StartLocal discipline as TestAgainstRealServer): submit → wait round
// trips, client-side ID minting, cancel, and the events stream with header
// validation, since-replay and early stop.

import (
	"context"
	"testing"
	"time"

	"tangled/internal/jobs"
	"tangled/internal/server"
)

func startJobServer(t *testing.T) (*server.Server, *Client) {
	t.Helper()
	s, err := server.New(server.Config{JobsEphemeral: true})
	if err != nil {
		t.Fatal(err)
	}
	base, err := s.StartLocal()
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	return s, New(base)
}

func TestJobRoundTrip(t *testing.T) {
	_, c := startJobServer(t)
	ctx := context.Background()

	st, err := c.SubmitJob(ctx, server.JobRequest{
		RunRequest: server.RunRequest{ID: "cj1", Src: "lex $1,9\nlex $0,0\nsys\n"},
		Tenant:     "acme",
	})
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	if st.ID != "cj1" || st.Tenant != "acme" {
		t.Fatalf("accepted record %+v", st)
	}
	fin, err := c.WaitJob(ctx, "cj1")
	if err != nil {
		t.Fatalf("wait: %v", err)
	}
	if fin.State != string(jobs.StateCompleted) || fin.Result == nil || fin.Result.Regs[1] != 9 {
		t.Fatalf("final record %+v", fin)
	}
	// Direct status fetch agrees.
	got, err := c.Job(ctx, "cj1")
	if err != nil || got.State != fin.State {
		t.Fatalf("status: %+v, %v", got, err)
	}
}

func TestSubmitJobMintsID(t *testing.T) {
	_, c := startJobServer(t)
	st, err := c.SubmitJob(context.Background(), server.JobRequest{
		RunRequest: server.RunRequest{Src: "lex $0,0\nsys\n"},
	})
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	if st.ID == "" {
		t.Fatal("no client-minted job ID")
	}
	if _, err := c.WaitJob(context.Background(), st.ID); err != nil {
		t.Fatalf("wait on minted ID: %v", err)
	}
}

func TestCancelJobUnknownIs404(t *testing.T) {
	_, c := startJobServer(t)
	if _, err := c.CancelJob(context.Background(), "ghost"); err == nil {
		t.Fatal("cancel of unknown job succeeded")
	}
}

func TestEventsReplayAndStop(t *testing.T) {
	_, c := startJobServer(t)
	ctx := context.Background()
	if _, err := c.SubmitJob(ctx, server.JobRequest{
		RunRequest: server.RunRequest{ID: "ev1", Src: "lex $0,0\nsys\n"},
	}); err != nil {
		t.Fatal(err)
	}
	if _, err := c.WaitJob(ctx, "ev1"); err != nil {
		t.Fatal(err)
	}

	// follow=false returns the buffered lifecycle and ends cleanly.
	var evs []jobs.Event
	if err := c.Events(ctx, 0, false, func(ev jobs.Event) bool {
		evs = append(evs, ev)
		return true
	}); err != nil {
		t.Fatalf("events: %v", err)
	}
	if len(evs) != 3 {
		t.Fatalf("replayed %d events, want 3: %+v", len(evs), evs)
	}
	want := []string{jobs.EventSubmitted, jobs.EventStarted, jobs.EventCompleted}
	for i, ev := range evs {
		if ev.Type != want[i] || ev.Job != "ev1" {
			t.Fatalf("event %d = %+v, want %s", i, ev, want[i])
		}
	}

	// since-replay resumes past a cursor.
	var rest []jobs.Event
	if err := c.Events(ctx, evs[0].Seq, false, func(ev jobs.Event) bool {
		rest = append(rest, ev)
		return true
	}); err != nil {
		t.Fatal(err)
	}
	if len(rest) != 2 || rest[0].Seq != evs[1].Seq {
		t.Fatalf("since-replay %+v", rest)
	}

	// fn returning false stops a live stream without error.
	done := make(chan error, 1)
	go func() {
		done <- c.Events(ctx, 0, true, func(ev jobs.Event) bool { return false })
	}()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("early stop: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Events did not return after fn said stop")
	}
}

func TestEventsSchemaChecked(t *testing.T) {
	// A server without the jobs subsystem 404s the events route; the client
	// must surface that as an error, not an empty stream.
	s, err := server.New(server.Config{})
	if err != nil {
		t.Fatal(err)
	}
	base, err := s.StartLocal()
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	c := New(base)
	if err := c.Events(context.Background(), 0, false, func(jobs.Event) bool { return true }); err == nil {
		t.Fatal("events against a sync-only server succeeded")
	}
}
