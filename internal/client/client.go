// Package client is the Go client for the Qat serving API (internal/server):
// typed wrappers over POST /v1/run, /v1/batch, /v1/assemble and the GET
// endpoints, with the retry discipline a remote accelerator front-end needs —
// exponential backoff with full jitter, Retry-After honored on 429/503
// backpressure, and idempotent resubmission: every run is assigned its
// request ID before the first attempt, so a retry after a lost response
// replays the server's cached result instead of re-executing.
package client

import (
	"bufio"
	"bytes"
	"context"
	"crypto/rand"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	mrand "math/rand"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"time"

	"tangled/internal/server"
)

// Config parameterizes a Client; the zero value (plus a BaseURL) is a
// sensible production client.
type Config struct {
	// BaseURL is the server root, e.g. "http://127.0.0.1:8080".
	BaseURL string
	// HTTPClient overrides the transport; nil means a dedicated
	// http.Client with no global timeout (deadlines come from ctx).
	HTTPClient *http.Client
	// MaxRetries bounds attempts beyond the first; <0 disables retries,
	// 0 means 4.
	MaxRetries int
	// BaseBackoff seeds the exponential schedule; <=0 means 50ms.
	BaseBackoff time.Duration
	// MaxBackoff caps one sleep; <=0 means 2s.
	MaxBackoff time.Duration
}

// Client talks to one qatserver. Safe for concurrent use.
type Client struct {
	cfg      Config
	http     *http.Client
	jitterMu sync.Mutex
	rng      *mrand.Rand // jitter source, guarded by jitterMu
	// sleep is swapped out by tests so retry schedules don't burn wall
	// clock.
	sleep func(ctx context.Context, d time.Duration) error
}

// New builds a client for baseURL with Config defaults.
func New(baseURL string) *Client { return NewWith(Config{BaseURL: baseURL}) }

// NewWith builds a client from an explicit Config.
func NewWith(cfg Config) *Client {
	if cfg.MaxRetries == 0 {
		cfg.MaxRetries = 4
	}
	if cfg.BaseBackoff <= 0 {
		cfg.BaseBackoff = 50 * time.Millisecond
	}
	if cfg.MaxBackoff <= 0 {
		cfg.MaxBackoff = 2 * time.Second
	}
	cfg.BaseURL = strings.TrimRight(cfg.BaseURL, "/")
	h := cfg.HTTPClient
	if h == nil {
		h = &http.Client{}
	}
	var seed [8]byte
	rand.Read(seed[:])
	return &Client{
		cfg:  cfg,
		http: h,
		rng:  mrand.New(mrand.NewSource(int64(binary.BigEndian.Uint64(seed[:])))),
		sleep: func(ctx context.Context, d time.Duration) error {
			t := time.NewTimer(d)
			defer t.Stop()
			select {
			case <-ctx.Done():
				return ctx.Err()
			case <-t.C:
				return nil
			}
		},
	}
}

// APIError is a non-2xx server response, carrying the decoded body.
type APIError struct {
	Status int
	Resp   server.ErrorResponse
}

func (e *APIError) Error() string {
	if len(e.Resp.Lines) > 0 {
		return fmt.Sprintf("server: HTTP %d: %s (line %d: %s)",
			e.Status, e.Resp.Error, e.Resp.Lines[0].Line, e.Resp.Lines[0].Msg)
	}
	return fmt.Sprintf("server: HTTP %d: %s", e.Status, e.Resp.Error)
}

// retryable reports whether a response status is worth another attempt:
// backpressure (429, 503) and transient server faults (5xx other than the
// run-outcome 504, which is the program's deadline, not the transport's).
func retryable(status int) bool {
	switch status {
	case http.StatusTooManyRequests, http.StatusServiceUnavailable,
		http.StatusInternalServerError, http.StatusBadGateway:
		return true
	}
	return false
}

// retryableGet is the GET variant: 503 is excluded because on the GET
// surface it is a meaningful answer, not a transient fault — a draining
// server reports 503 from /v1/healthz, and a health prober (the cluster
// coordinator's heartbeat) must see that state immediately instead of
// burning its retry budget against it.
func retryableGet(status int) bool {
	switch status {
	case http.StatusTooManyRequests, http.StatusInternalServerError,
		http.StatusBadGateway:
		return true
	}
	return false
}

// drainLimit bounds how much of a leftover response body is read before
// Close. Anything this client receives is far smaller; a body still going
// past the limit is cheaper to abandon (closing the connection) than to
// stream to /dev/null.
const drainLimit = 256 << 10

// drainClose consumes the unread remainder of a response body (bounded)
// and closes it. Closing an undrained body tears down the TCP connection,
// so without this every retry and every poll pays a fresh dial instead of
// reusing the keep-alive connection.
func drainClose(body io.ReadCloser) {
	io.Copy(io.Discard, io.LimitReader(body, drainLimit))
	body.Close()
}

// backoff computes the sleep before attempt n (0-based), honoring a server
// Retry-After hint when one was given: exponential with full jitter,
// capped.
func (c *Client) backoff(attempt int, retryAfter time.Duration) time.Duration {
	d := time.Duration(float64(c.cfg.BaseBackoff) * math.Pow(2, float64(attempt)))
	if d > c.cfg.MaxBackoff {
		d = c.cfg.MaxBackoff
	}
	// Full jitter: uniform in (0, d]. Decorrelates a fleet of clients that
	// all saw the same 429.
	c.jitterMu.Lock()
	d = time.Duration(c.rng.Int63n(int64(d))) + 1
	c.jitterMu.Unlock()
	if retryAfter > d {
		d = retryAfter
	}
	return d
}

// post runs one POST with the retry loop; ok bodies decode into out.
func (c *Client) post(ctx context.Context, path string, body, out interface{}) error {
	payload, err := json.Marshal(body)
	if err != nil {
		return err
	}
	return c.do(ctx, func() (*http.Request, error) {
		req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.cfg.BaseURL+path, bytes.NewReader(payload))
		if err != nil {
			return nil, err
		}
		req.Header.Set("Content-Type", "application/json")
		return req, nil
	}, retryable, out)
}

// get runs one GET through the same backoff/Retry-After machinery as post,
// so a single transient transport flake doesn't fail a healthz/buildinfo
// poll (which a heartbeat loop would escalate into a missed beat).
func (c *Client) get(ctx context.Context, path string, out interface{}) error {
	return c.do(ctx, func() (*http.Request, error) {
		return http.NewRequestWithContext(ctx, http.MethodGet, c.cfg.BaseURL+path, nil)
	}, retryableGet, out)
}

// do is the shared retry loop: mkReq builds a fresh request per attempt,
// retryStatus decides which HTTP statuses are worth another one (transport
// errors always are), and ok bodies decode into out. Bodies are drained
// before Close on every path so the connection returns to the keep-alive
// pool.
func (c *Client) do(ctx context.Context, mkReq func() (*http.Request, error), retryStatus func(int) bool, out interface{}) error {
	var lastErr error
	for attempt := 0; ; attempt++ {
		req, err := mkReq()
		if err != nil {
			return err
		}
		resp, err := c.http.Do(req)
		var retryAfter time.Duration
		if err == nil {
			if resp.StatusCode < 300 {
				err = json.NewDecoder(resp.Body).Decode(out)
				drainClose(resp.Body)
				return err
			}
			apiErr := decodeError(resp)
			drainClose(resp.Body)
			if !retryStatus(resp.StatusCode) {
				return apiErr
			}
			lastErr = apiErr
			retryAfter = retryAfterOf(resp, apiErr)
		} else {
			if ctx.Err() != nil {
				return ctx.Err()
			}
			lastErr = err // transport error: always retryable
		}
		if attempt >= c.cfg.MaxRetries {
			return fmt.Errorf("client: giving up after %d attempts: %w", attempt+1, lastErr)
		}
		if err := c.sleep(ctx, c.backoff(attempt, retryAfter)); err != nil {
			return err
		}
	}
}

func decodeError(resp *http.Response) *APIError {
	apiErr := &APIError{Status: resp.StatusCode}
	body, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<16))
	if err := json.Unmarshal(body, &apiErr.Resp); err != nil || apiErr.Resp.Error == "" {
		apiErr.Resp.Error = strings.TrimSpace(string(body))
	}
	return apiErr
}

func retryAfterOf(resp *http.Response, apiErr *APIError) time.Duration {
	if apiErr != nil && apiErr.Resp.RetryAfterMs > 0 {
		return time.Duration(apiErr.Resp.RetryAfterMs) * time.Millisecond
	}
	if s := resp.Header.Get("Retry-After"); s != "" {
		if d, ok := parseRetryAfter(s, time.Now()); ok {
			return d
		}
	}
	return 0
}

// parseRetryAfter interprets a Retry-After header value per RFC 9110
// §10.2.3: either a non-negative decimal delta in seconds, or an HTTP-date
// (RFC 1123, RFC 850, or ANSI C asctime — http.ParseTime tries all three).
// Negative deltas and dates already in the past clamp to zero (retry now);
// an unparseable value reports !ok so the caller falls back to its own
// backoff schedule.
func parseRetryAfter(s string, now time.Time) (time.Duration, bool) {
	s = strings.TrimSpace(s)
	if s == "" {
		return 0, false
	}
	if secs, err := strconv.Atoi(s); err == nil {
		if secs < 0 {
			return 0, true
		}
		return time.Duration(secs) * time.Second, true
	}
	if t, err := http.ParseTime(s); err == nil {
		d := t.Sub(now)
		if d < 0 {
			return 0, true
		}
		return d, true
	}
	return 0, false
}

// Run executes one program. A request without an ID is assigned one before
// the first attempt, so every retry resubmits the same ID and a duplicate
// execution is replayed from the server's idempotency cache rather than
// re-run.
func (c *Client) Run(ctx context.Context, req server.RunRequest) (server.RunResult, error) {
	if req.ID == "" {
		req.ID = NewRequestID()
	}
	var out server.RunResult
	err := c.post(ctx, "/v1/run", &req, &out)
	return out, err
}

// Batch executes a program list, returning results in input order after
// verifying the stream's schema header. The server streams NDJSON; this
// collects it (load generation reads the stream incrementally instead).
func (c *Client) Batch(ctx context.Context, req server.BatchRequest) ([]server.RunResult, error) {
	if req.ID == "" {
		req.ID = NewRequestID()
	}
	payload, err := json.Marshal(&req)
	if err != nil {
		return nil, err
	}
	httpReq, err := http.NewRequestWithContext(ctx, http.MethodPost, c.cfg.BaseURL+"/v1/batch", bytes.NewReader(payload))
	if err != nil {
		return nil, err
	}
	httpReq.Header.Set("Content-Type", "application/json")
	resp, err := c.http.Do(httpReq)
	if err != nil {
		return nil, err
	}
	defer drainClose(resp.Body)
	if resp.StatusCode >= 300 {
		return nil, decodeError(resp)
	}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 64*1024), 8<<20)
	if !sc.Scan() {
		return nil, errors.New("client: empty batch response")
	}
	var hdr server.ResultsHeader
	if err := json.Unmarshal(sc.Bytes(), &hdr); err != nil {
		return nil, fmt.Errorf("client: bad results header: %w", err)
	}
	if hdr.Schema != server.ResultsSchema || hdr.Version != server.ResultsSchemaVersion {
		return nil, fmt.Errorf("client: results schema %q v%d, want %q v%d",
			hdr.Schema, hdr.Version, server.ResultsSchema, server.ResultsSchemaVersion)
	}
	results := make([]server.RunResult, 0, hdr.Count)
	for sc.Scan() {
		var r server.RunResult
		if err := json.Unmarshal(sc.Bytes(), &r); err != nil {
			return nil, fmt.Errorf("client: bad result line: %w", err)
		}
		results = append(results, r)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(results) != hdr.Count {
		return nil, fmt.Errorf("client: stream truncated: %d results, header said %d", len(results), hdr.Count)
	}
	return results, nil
}

// Assemble assembles source remotely; assembler diagnostics come back as an
// *APIError with Lines populated.
func (c *Client) Assemble(ctx context.Context, src string) (server.AssembleResponse, error) {
	return c.AssembleWith(ctx, server.AssembleRequest{Src: src})
}

// AssembleWith is Assemble with the full request surface: opt-in lint
// reports and the optimizing recompiler (req.Optimize — the delta report
// and, when applied, the rewritten word image come back on the response).
func (c *Client) AssembleWith(ctx context.Context, req server.AssembleRequest) (server.AssembleResponse, error) {
	var out server.AssembleResponse
	err := c.post(ctx, "/v1/assemble", &req, &out)
	return out, err
}

// Health fetches /v1/healthz. A draining server answers 503 but still with
// a body, surfaced here as (*APIError, zero Health).
func (c *Client) Health(ctx context.Context) (server.Health, error) {
	var out server.Health
	err := c.get(ctx, "/v1/healthz", &out)
	return out, err
}

// BuildInfo fetches /v1/buildinfo.
func (c *Client) BuildInfo(ctx context.Context) (server.BuildInfo, error) {
	var out server.BuildInfo
	err := c.get(ctx, "/v1/buildinfo", &out)
	return out, err
}

// ClusterHealth fetches /v1/healthz and decodes the cluster superset shape.
// Against a plain worker the Nodes slice is simply empty, so callers can
// use this unconditionally and branch on len(Nodes) to detect a
// coordinator. A degraded cluster answers 503 with a body, surfaced as
// (*APIError, zero value) like Health.
func (c *Client) ClusterHealth(ctx context.Context) (server.ClusterHealth, error) {
	var out server.ClusterHealth
	err := c.get(ctx, "/v1/healthz", &out)
	return out, err
}

// ClusterBuildInfo fetches /v1/buildinfo with per-node rows when the far
// side is a coordinator (empty Nodes against a plain worker).
func (c *Client) ClusterBuildInfo(ctx context.Context) (server.ClusterBuildInfo, error) {
	var out server.ClusterBuildInfo
	err := c.get(ctx, "/v1/buildinfo", &out)
	return out, err
}

// NewRequestID mints a random idempotency key ("cli-<16 hex>").
func NewRequestID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		return fmt.Sprintf("cli-%d", time.Now().UnixNano())
	}
	return fmt.Sprintf("cli-%016x", binary.BigEndian.Uint64(b[:]))
}
