package client

// Regression tests for Retry-After parsing. The original implementation
// accepted only the delta-seconds form; RFC 9110 §10.2.3 also allows an
// HTTP-date, which real proxies and load balancers emit. A date-form header
// used to be silently ignored, collapsing the server's hint into the
// client's own (much shorter) backoff schedule.

import (
	"context"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"
)

func TestParseRetryAfter(t *testing.T) {
	// A fixed "now" keeps the date-form cases deterministic.
	now := time.Date(2026, time.August, 5, 12, 0, 0, 0, time.UTC)

	cases := []struct {
		name string
		in   string
		want time.Duration
		ok   bool
	}{
		{"delta seconds", "120", 120 * time.Second, true},
		{"delta zero", "0", 0, true},
		{"delta with whitespace", "  7 ", 7 * time.Second, true},
		{"negative delta clamps", "-30", 0, true},
		{"rfc1123 future", now.Add(90 * time.Second).Format(http.TimeFormat), 90 * time.Second, true},
		{"rfc1123 past clamps", now.Add(-time.Hour).Format(http.TimeFormat), 0, true},
		{"rfc850 future", now.Add(2 * time.Minute).Format("Monday, 02-Jan-06 15:04:05 GMT"), 2 * time.Minute, true},
		{"ansi c future", now.Add(45 * time.Second).Format(time.ANSIC), 45 * time.Second, true},
		{"empty", "", 0, false},
		{"blank", "   ", 0, false},
		{"garbage", "soon", 0, false},
		{"fractional seconds rejected", "1.5", 0, false},
		{"malformed date", "Tue, 99 Zed 2026 12:00:00 GMT", 0, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got, ok := parseRetryAfter(tc.in, now)
			if ok != tc.ok || got != tc.want {
				t.Fatalf("parseRetryAfter(%q) = (%v, %v), want (%v, %v)", tc.in, got, ok, tc.want, tc.ok)
			}
		})
	}
}

// TestRetryAfterHTTPDateHonored drives the full retry loop against a server
// that backpressures with a date-form Retry-After and checks the computed
// sleep respects it — the end-to-end shape of the original bug.
func TestRetryAfterHTTPDateHonored(t *testing.T) {
	var calls atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) == 1 {
			w.Header().Set("Retry-After", time.Now().Add(30*time.Second).UTC().Format(http.TimeFormat))
			http.Error(w, `{"error":"busy"}`, http.StatusServiceUnavailable)
			return
		}
		w.Write([]byte(`{}`))
	}))
	defer srv.Close()

	c := NewWith(Config{BaseURL: srv.URL, BaseBackoff: time.Millisecond, MaxBackoff: 2 * time.Millisecond})
	var slept time.Duration
	c.sleep = func(ctx context.Context, d time.Duration) error {
		slept = d
		return nil
	}
	var out struct{}
	if err := c.post(t.Context(), "/v1/run", struct{}{}, &out); err != nil {
		t.Fatalf("post: %v", err)
	}
	// The hint said ~30s; allow slack for wall clock elapsed between the
	// server stamping the date and the client parsing it, but it must be far
	// above the 2ms backoff cap that would apply if the header were dropped.
	if slept < 20*time.Second {
		t.Fatalf("slept %v; date-form Retry-After hint was ignored", slept)
	}
}
